(* Differential proof harness for the discrimination-tree rule index
   (lib/kernel/index.ml): indexed and linear-scan rule selection must be
   observationally identical — same normal forms, same step counts, same
   traced derivations and certificates — on a small adversarially chosen
   theory, on randomly generated terms, on every spec in specs/, and on
   the TLS / NSPK proof campaigns (sequential and under the sched pool).
   The only permitted difference is speed, which the candidate-ratio and
   corruption tests pin from the other side: the index really does
   exclude rules (a corrupted bucket visibly changes results until the
   selfcheck degrades it to sound full-bucket answers). *)

open Kernel

(* ------------------------------------------------------------------ *)
(* A small theory exercising every bucket kind: plain discrimination
   (ixP/ixM share nothing with each other), a conditional rule, and an
   AC-rooted rule (ixU). *)

let nat = Sort.visible "IxNat"
let sg = Signature.create ()
let zop = Signature.declare sg "ixZ" [] nat ~attrs:[ Signature.Ctor ]
let sop = Signature.declare sg "ixS" [ nat ] nat ~attrs:[ Signature.Ctor ]
let plusop = Signature.declare sg "ixP" [ nat; nat ] nat ~attrs:[]
let mulop = Signature.declare sg "ixM" [ nat; nat ] nat ~attrs:[]
let unionop = Signature.declare sg "ixU" [ nat; nat ] nat ~attrs:[ Signature.Ac ]
let iszop = Signature.declare sg "ixIsz" [ nat ] Sort.bool ~attrs:[]
let gateop = Signature.declare sg "ixGate" [ nat ] nat ~attrs:[]
let z = Term.const zop
let s t = Term.app sop [ t ]
let plus a b = Term.app plusop [ a; b ]
let mul a b = Term.app mulop [ a; b ]
let u a b = Term.app unionop [ a; b ]
let isz t = Term.app iszop [ t ]
let gate t = Term.app gateop [ t ]
let vM = Term.var "M" nat
let vN = Term.var "N" nat

let rules =
  [
    Rewrite.rule ~label:"ix-p0" (plus z vN) vN;
    Rewrite.rule ~label:"ix-ps" (plus (s vM) vN) (s (plus vM vN));
    Rewrite.rule ~label:"ix-m0" (mul z vN) z;
    Rewrite.rule ~label:"ix-ms" (mul (s vM) vN) (plus vN (mul vM vN));
    Rewrite.rule ~label:"ix-uz" (u z vN) vN;
    Rewrite.rule ~label:"ix-isz0" (isz z) Term.tt;
    Rewrite.rule ~label:"ix-iszs" (isz (s vM)) Term.ff;
    Rewrite.rule ~cond:(isz vN) ~label:"ix-gate" (gate vN) z;
  ]

let fresh_indexed () = Rewrite.make rules

let fresh_linear () =
  let sys = Rewrite.make rules in
  Rewrite.set_indexing sys false;
  sys

(* Random ground terms over the theory (depth-bounded). *)
let gen_ground =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then return z
        else
          frequency
            [
              1, return z;
              3, map s (self (n / 2));
              3, map2 plus (self (n / 2)) (self (n / 2));
              2, map2 mul (self (n / 3)) (self (n / 3));
              3, map2 u (self (n / 2)) (self (n / 2));
              1, map gate (self (n / 2));
            ]))

let arb_ground = QCheck.make ~print:Term.to_string gen_ground

(* ------------------------------------------------------------------ *)
(* QCheck: indexed vs linear normalization — identical NFs and steps.   *)

let prop_differential_nf =
  QCheck.Test.make ~name:"indexed and linear normalization agree" ~count:300
    arb_ground (fun t ->
      let si = fresh_indexed () and sl = fresh_linear () in
      let nfi = Rewrite.normalize si t in
      let steps_i = Rewrite.steps si in
      let nfl = Rewrite.normalize sl t in
      let steps_l = Rewrite.steps sl in
      (* a third system for the seed reference: [normalize_uncached] ticks
         the same shared step counter, so it needs its own accounting *)
      let su = fresh_indexed () in
      let nfu = Rewrite.normalize_uncached su t in
      Term.equal nfi nfl && Term.equal nfi nfu && steps_i = steps_l
      && steps_i = Rewrite.steps su)

let prop_differential_traced =
  QCheck.Test.make ~name:"indexed and linear traced runs agree" ~count:150
    arb_ground (fun t ->
      let si = fresh_indexed () and sl = fresh_linear () in
      let nfi, _ = Rewrite.normalize_traced si t in
      let nfl, _ = Rewrite.normalize_traced sl t in
      Term.equal nfi nfl && Rewrite.steps si = Rewrite.steps sl)

(* ------------------------------------------------------------------ *)
(* QCheck: never-miss — every rule the matcher fires is a candidate,    *)
(* and candidates come back in rule order.                              *)

let idx = lazy (Index.build ~lhs:(fun (r : Rewrite.rule) -> r.Rewrite.lhs) rules)

let matches (r : Rewrite.rule) t =
  match Term.view r.Rewrite.lhs, Term.view t with
  | Term.App (po, _), Term.App (so, _)
    when Signature.is_ac po && Signature.op_equal po so ->
    Ac.match_first r.Rewrite.lhs t <> None
  | _ -> Matching.match_ r.Rewrite.lhs t <> None

let prop_never_miss =
  QCheck.Test.make ~name:"index never misses a matchable rule" ~count:500
    arb_ground (fun t ->
      let cands = Index.candidates (Lazy.force idx) t in
      List.for_all
        (fun r -> (not (matches r t)) || List.memq r cands)
        rules)

let prop_candidate_order =
  QCheck.Test.make ~name:"candidates preserve rule-insertion order" ~count:300
    arb_ground (fun t ->
      let cands = Index.candidates (Lazy.force idx) t in
      cands = List.filter (fun r -> List.memq r cands) rules)

(* ------------------------------------------------------------------ *)
(* QCheck: AC bucket invariance — shuffled argument orders of the same  *)
(* AC term get the same candidates (canonical-flag invariance).         *)

let prop_ac_shuffle_invariance =
  QCheck.Test.make
    ~name:"AC candidates are invariant under argument shuffles" ~count:300
    (QCheck.triple arb_ground arb_ground arb_ground) (fun (a, b, c) ->
      let names ts = List.map (fun (r : Rewrite.rule) -> r.Rewrite.label)
          (Index.candidates (Lazy.force idx) ts) in
      let shapes =
        [ u a (u b c); u c (u b a); u (u b a) c; Ac.normalize (u a (u b c)) ]
      in
      match List.map names shapes with
      | ref :: rest -> List.for_all (( = ) ref) rest
      | [] -> false)

(* ------------------------------------------------------------------ *)
(* All-specs differential through the evaluator: indexed vs linear must
   agree on every output — normal form, verdict, and (unlike the memo
   comparison in test_differential.ml) the exact step count. *)

let check_spec_indexed (file, path) () =
  let src = Test_differential.read_file path in
  let src = src ^ Test_differential.driver_for src in
  let run ~indexing =
    let env = Cafeobj.Eval.create () in
    Cafeobj.Eval.set_indexing env indexing;
    List.map Test_differential.observe (Cafeobj.Eval.eval_string env src)
  in
  let linear = run ~indexing:false in
  let indexed = run ~indexing:true in
  if linear <> indexed then
    Alcotest.failf "%s: indexed and linear evaluation diverge" file;
  (* and against the seed engine (uncached, linear): identical NFs and
     verdicts; steps may only shrink through the memo *)
  let env = Cafeobj.Eval.create () in
  Cafeobj.Eval.set_uncached env true;
  let seed = List.map Test_differential.observe (Cafeobj.Eval.eval_string env src) in
  List.iter2
    (fun (o : Test_differential.obs) (m : Test_differential.obs) ->
      match o, m with
      | Test_differential.OReduced o, Test_differential.OReduced m ->
        Alcotest.(check string) (file ^ ": nf vs seed") o.nf m.nf;
        Alcotest.(check bool) (file ^ ": verdict vs seed") o.verdict m.verdict
      | a, b ->
        if a <> b then Alcotest.failf "%s: output kinds diverge vs seed" file)
    seed indexed

(* ------------------------------------------------------------------ *)
(* Campaign fingerprints: TLS (both styles) and NSPK/NSL, indexed vs
   linear, sequential and under the sched pool — byte-identical. *)

let with_linear_campaign env f =
  let base = Core.Induction.system env in
  Rewrite.set_default_indexing false;
  Rewrite.set_indexing base false;
  Fun.protect
    ~finally:(fun () ->
      Rewrite.set_default_indexing true;
      Rewrite.set_indexing base true)
    f

let tls_fingerprints ?pool env proofs =
  List.map
    (fun p ->
      Core.Report.result_fingerprint (Proofs.Tls_invariants.run ?pool env p))
    proofs

let test_tls_fingerprints style () =
  let env = Tls.Model.env style in
  let proofs =
    List.map (Proofs.Tls_invariants.find style) [ "inv1"; "esfin-genuine" ]
  in
  let indexed = tls_fingerprints env proofs in
  let linear = with_linear_campaign env (fun () -> tls_fingerprints env proofs) in
  List.iter2
    (Alcotest.(check string) "campaign fingerprint, indexed vs linear")
    indexed linear

let test_tls_fingerprints_pool () =
  Sched.Pool.with_pool ~jobs:2 @@ fun pool ->
  let env = Tls.Model.env Tls.Model.Original in
  let proofs = [ Proofs.Tls_invariants.find Tls.Model.Original "inv1" ] in
  let seq = tls_fingerprints env proofs in
  let par = tls_fingerprints ~pool env proofs in
  let par_linear =
    with_linear_campaign env (fun () -> tls_fingerprints ~pool env proofs)
  in
  List.iter2 (Alcotest.(check string) "pool vs sequential") seq par;
  List.iter2 (Alcotest.(check string) "pool linear vs indexed") seq par_linear

let test_nspk_fingerprints () =
  let module P = Nspk.Symbolic_proofs in
  let module M = Nspk.Symbolic in
  List.iter
    (fun variant ->
      let proof = P.find variant "nonce-secrecy" in
      let fp env = Core.Report.result_fingerprint (P.run ~env variant proof) in
      let env = M.proof_env variant in
      let indexed = fp env in
      let env' = M.proof_env variant in
      let linear = with_linear_campaign env' (fun () -> fp env') in
      Alcotest.(check string) "nonce-secrecy fingerprint" indexed linear)
    [ M.Lowe_fixed; M.Classic ]

(* ------------------------------------------------------------------ *)
(* Certificates: traced runs through the index replay clean through the
   independent checker, and are byte-identical to linear-scan traces. *)

let obligations_cert sys reds =
  let tr = Rewrite.tracer () in
  Rewrite.set_tracer (Some tr);
  Fun.protect ~finally:(fun () -> Rewrite.set_tracer None) (fun () ->
      List.iter (fun t -> ignore (Rewrite.normalize sys t)) reds);
  let b = Analysis.Certgen.create () in
  Analysis.Certgen.add_obligations b (Rewrite.obligations tr);
  Analysis.Certgen.cert b

let check_errors cert = Certify.Check.create cert |> Certify.Check.check_all

let cert_inputs =
  [ plus (s z) (s (s z)); mul (s (s z)) (s z); u (s z) (u z (s z)); gate z ]

let test_cert_identical () =
  let ci = obligations_cert (fresh_indexed ()) cert_inputs in
  let cl = obligations_cert (fresh_linear ()) cert_inputs in
  Alcotest.(check string) "certificates byte-identical"
    (Certify.Cert.to_string cl) (Certify.Cert.to_string ci);
  Alcotest.(check int) "indexed certificate replays clean" 0
    (List.length (check_errors ci))

let test_cert_tls_inv1 () =
  (* the in-process equivalent of `verify --certify | check`, index on *)
  let env = Tls.Model.env Tls.Model.Original in
  let inv1 = Proofs.Tls_invariants.find Tls.Model.Original "inv1" in
  let tr = Rewrite.tracer () in
  Rewrite.set_tracer (Some tr);
  Fun.protect ~finally:(fun () -> Rewrite.set_tracer None) (fun () ->
      ignore (Proofs.Tls_invariants.run env inv1));
  let b = Analysis.Certgen.create () in
  Analysis.Certgen.add_obligations b (Rewrite.obligations tr);
  let cert = Analysis.Certgen.cert b in
  let res = Analysis.Certgen.check cert in
  Alcotest.(check bool) "has obligations" true (res.Analysis.Certgen.obligations > 0);
  (match res.Analysis.Certgen.errors with
  | [] -> ()
  | e :: _ ->
    Alcotest.failf "inv1 certificate rejected: %s: %s" e.Certify.Check.e_path
      e.Certify.Check.e_msg)

(* The traced rewriter must record the rule that {e applied}, not echo
   anything about the candidate set: dropping a non-matching rule from
   the index changes the candidates but neither the derivation nor its
   independent replay. *)
let test_trace_records_applied_rule () =
  let sys = fresh_indexed () in
  (* ix-ms (slot 1 of bucket ixM) cannot match [mul z (s z)], and the
     reduct needs no ixM rule at all; dropping it shrinks the candidate
     set to exactly the applicable rule without starving any redex *)
  Alcotest.(check bool) "dropped non-matching slot" true
    (Rewrite.corrupt_index_for_tests sys ~bucket:"ixM" ~slot:1);
  let subject = mul z (s z) in
  let nf, deriv = Rewrite.normalize_traced sys subject in
  Alcotest.(check string) "normal form unaffected" "ixZ" (Term.to_string nf);
  (match deriv.Rewrite.d_node with
  | Rewrite.Dapp { step = Some st; _ } ->
    Alcotest.(check string) "derivation names the applied rule" "ix-m0"
      st.Rewrite.rs_rule.Rewrite.label
  | _ -> Alcotest.fail "expected a root rule step");
  let b = Analysis.Certgen.create () in
  let tr = Rewrite.tracer () in
  Rewrite.set_tracer (Some tr);
  Fun.protect ~finally:(fun () -> Rewrite.set_tracer None) (fun () ->
      Rewrite.clear_cache sys;
      ignore (Rewrite.normalize sys subject));
  Analysis.Certgen.add_obligations b (Rewrite.obligations tr);
  Alcotest.(check int) "tampered-index trace still replays clean" 0
    (List.length (check_errors (Analysis.Certgen.cert b)))

(* ------------------------------------------------------------------ *)
(* Adversarial corruption: dropping the {e matching} rule visibly
   changes results (the index is load-bearing), the selfcheck detects
   it, degrades to full-bucket answers, and invalidates the memo. *)

let test_corruption_detected_tree () =
  let sys = fresh_indexed () in
  let subject = plus z (s z) in
  let want = Rewrite.normalize (fresh_linear ()) subject in
  Alcotest.(check string) "healthy index agrees with linear" (Term.to_string want)
    (Term.to_string (Rewrite.normalize sys subject));
  Alcotest.(check bool) "selfcheck passes while healthy" true
    (Rewrite.selfcheck sys = Ok ());
  Alcotest.(check bool) "dropped the matching slot" true
    (Rewrite.corrupt_index_for_tests sys ~bucket:"ixP" ~slot:0);
  Rewrite.clear_cache sys;
  Rewrite.invalidate_memo sys;
  let broken = Rewrite.normalize sys subject in
  Alcotest.(check bool) "corruption visibly diverges" false
    (Term.equal broken want);
  let gen_before = (Rewrite.memo_stats sys).Rewrite.generation in
  (match Rewrite.selfcheck sys with
  | Error msg ->
    Alcotest.(check bool) "diagnostic names the bucket" true
      (let contains hay needle =
         let lh = String.length hay and ln = String.length needle in
         let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
         go 0
       in
       contains msg "ixP")
  | Ok () -> Alcotest.fail "selfcheck accepted a corrupted index");
  Alcotest.(check bool) "selfcheck invalidated the memo" true
    ((Rewrite.memo_stats sys).Rewrite.generation > gen_before);
  Alcotest.(check bool) "index reports unhealthy" false
    (Rewrite.index_info sys).Index.ix_ok;
  (* degraded index answers with the full bucket: sound again *)
  Alcotest.(check string) "fallback restores the linear result"
    (Term.to_string want)
    (Term.to_string (Rewrite.normalize sys subject))

let test_corruption_detected_ac () =
  let t = Index.build ~lhs:Fun.id [ u z vN ] in
  let subject = u z (s z) in
  Alcotest.(check int) "AC bucket finds its rule" 1
    (List.length (Index.candidates t subject));
  Alcotest.(check bool) "tampered the AC profile" true
    (Index.unsafe_drop_slot t ~bucket:"ixU" ~slot:0);
  Alcotest.(check int) "corrupted AC bucket misses" 0
    (List.length (Index.candidates t subject));
  (match Index.validate t with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "validate accepted a corrupted AC bucket");
  Alcotest.(check bool) "index degraded" false (Index.ok t);
  Alcotest.(check int) "degraded bucket answers in full" 1
    (List.length (Index.candidates t subject))

(* ------------------------------------------------------------------ *)
(* Stats and generation stamping.                                      *)

let test_stats () =
  Index.reset_stats ();
  let sys = fresh_indexed () in
  ignore (Rewrite.normalize sys (mul (s (s z)) (s (s z))));
  let st = Index.stats () in
  Alcotest.(check bool) "queries counted" true (st.Index.queries > 0);
  Alcotest.(check bool) "index filtered rules" true (st.Index.filtered > 0);
  Alcotest.(check int) "no fallbacks while healthy" 0 st.Index.fallbacks;
  Rewrite.set_indexing sys false;
  Rewrite.clear_cache sys;
  ignore (Rewrite.normalize sys (mul (s (s z)) (s (s z))));
  Alcotest.(check bool) "linear selection counts fallbacks" true
    ((Index.stats ()).Index.fallbacks > 0)

let test_generation_stamp () =
  let sys = fresh_indexed () in
  let ii = Rewrite.index_info sys in
  Alcotest.(check int) "index generation is the system uid"
    (Rewrite.info sys).Rewrite.si_uid ii.Index.ix_generation;
  Alcotest.(check int) "all rules compiled" (List.length rules) ii.Index.ix_rules;
  Alcotest.(check bool) "has an AC bucket" true (ii.Index.ix_ac_buckets >= 1);
  let ext =
    Rewrite.extend sys [ Rewrite.rule ~label:"ix-ext" (gate (s vM)) (s vM) ]
  in
  let ie = Rewrite.index_info ext in
  Alcotest.(check bool) "extend rebuilds the index" true
    (ie.Index.ix_generation <> ii.Index.ix_generation);
  Alcotest.(check int) "extended index covers the new rule"
    (List.length rules + 1) ie.Index.ix_rules;
  Alcotest.(check bool) "extend inherits the indexing flag" true
    (Rewrite.indexing ext);
  Rewrite.set_indexing sys false;
  Alcotest.(check bool) "linear extend inherits too" false
    (Rewrite.indexing (Rewrite.extend sys []));
  (* memo invalidation must NOT rebuild the index: the rules are unchanged *)
  Rewrite.invalidate_memo ext;
  Alcotest.(check int) "invalidate_memo leaves the index generation"
    ie.Index.ix_generation (Rewrite.index_info ext).Index.ix_generation

(* ------------------------------------------------------------------ *)
(* Regression: the runner's per-suite footer must not let suites that
   ran zero tests skew the slowest-first ordering (satellite fix). *)

let entry name runs ns = { Timing.e_name = name; e_runs = runs; e_ns = ns }

let test_timing_order () =
  let ran, skipped =
    Timing.order
      [ entry "fast" 3 5; entry "empty" 0 0; entry "slow" 1 9; entry "zip" 0 0 ]
  in
  Alcotest.(check (list string)) "slowest first, zero-run suites excluded"
    [ "slow"; "fast" ]
    (List.map (fun e -> e.Timing.e_name) ran);
  Alcotest.(check (list string)) "zero-run suites listed apart, in order"
    [ "empty"; "zip" ] skipped

let test_timing_render () =
  let out =
    Timing.render [ entry "a" 1 2_000_000_000; entry "none" 0 0; entry "b" 2 3_500_000_000 ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "b before a" true
    (List.exists (fun l -> String.length l > 3 && String.trim l <> "" && l.[2] = 'b') lines
     &&
     let pos name =
       let rec go i = function
         | [] -> max_int
         | l :: rest ->
           if String.trim l <> "" && String.length (String.trim l) > 0
              && String.split_on_char ' ' (String.trim l) |> List.hd = name
           then i
           else go (i + 1) rest
       in
       go 0 lines
     in
     pos "b" < pos "a");
  Alcotest.(check bool) "never-run suite is not a timed row" true
    (not (List.exists (fun l ->
         match String.split_on_char ' ' (String.trim l) with
         | "none" :: _ -> true
         | _ -> false)
        lines));
  Alcotest.(check bool) "never-run suite is reported apart" true
    (List.exists (fun l ->
         String.trim l = "(no tests run: none)")
        lines)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
    [
      prop_differential_nf;
      prop_differential_traced;
      prop_never_miss;
      prop_candidate_order;
      prop_ac_shuffle_invariance;
    ]

let suite =
  ( "index",
    qcheck_tests
    @ List.map
        (fun spec ->
          Alcotest.test_case
            ("indexed vs linear: " ^ fst spec)
            `Quick (check_spec_indexed spec))
        (Test_differential.all_specs ())
    @ [
        Alcotest.test_case "TLS fingerprints (original)" `Slow
          (test_tls_fingerprints Tls.Model.Original);
        Alcotest.test_case "TLS fingerprints (variant)" `Slow
          (test_tls_fingerprints Tls.Model.Cf2First);
        Alcotest.test_case "TLS fingerprints under the pool" `Slow
          test_tls_fingerprints_pool;
        Alcotest.test_case "NSPK/NSL fingerprints" `Slow test_nspk_fingerprints;
        Alcotest.test_case "certificates byte-identical" `Quick
          test_cert_identical;
        Alcotest.test_case "TLS inv1 certificate replays clean" `Slow
          test_cert_tls_inv1;
        Alcotest.test_case "trace records the applied rule" `Quick
          test_trace_records_applied_rule;
        Alcotest.test_case "corruption detected (tree bucket)" `Quick
          test_corruption_detected_tree;
        Alcotest.test_case "corruption detected (AC bucket)" `Quick
          test_corruption_detected_ac;
        Alcotest.test_case "query stats" `Quick test_stats;
        Alcotest.test_case "generation stamping" `Quick test_generation_stamp;
        Alcotest.test_case "timing footer ordering" `Quick test_timing_order;
        Alcotest.test_case "timing footer rendering" `Quick test_timing_render;
      ] )
