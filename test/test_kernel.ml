(* Unit and property tests for the term-algebra kernel. *)

open Kernel

let nat = Sort.visible "TNat"
let sg = Signature.create ()
let zero = Signature.declare sg "zero" [] nat ~attrs:[ Signature.Ctor ]
let succ = Signature.declare sg "succ" [ nat ] nat ~attrs:[ Signature.Ctor ]
let plus = Signature.declare sg "plus" [ nat; nat ] nat ~attrs:[]
let union = Signature.declare sg "union" [ nat; nat ] nat ~attrs:[ Signature.Ac ]

let rec nat_term n =
  if n = 0 then Term.const zero else Term.app succ [ nat_term (n - 1) ]

let x = Term.var "X" nat
let y = Term.var "Y" nat
let z = Term.var "Z" nat

let plus_rules =
  [
    Rewrite.rule ~label:"plus-zero" (Term.app plus [ Term.const zero; y ]) y;
    Rewrite.rule ~label:"plus-succ"
      (Term.app plus [ Term.app succ [ x ]; y ])
      (Term.app succ [ Term.app plus [ x; y ] ]);
  ]

let term_testable = Alcotest.testable Term.pp Term.equal

(* ------------------------------------------------------------------ *)
(* Sorts and signatures *)

let test_sort_interning () =
  Alcotest.(check bool) "same object" true (Sort.visible "TNat" == nat);
  Alcotest.(check bool) "bool is visible" false Sort.bool.Sort.hidden;
  Alcotest.(check bool) "mem" true (Sort.mem "TNat")

let test_sort_hidden_conflict () =
  Alcotest.check_raises "conflicting visibility"
    (Invalid_argument "Sort.hidden: \"TNat\" already interned with other visibility")
    (fun () -> ignore (Sort.hidden "TNat"))

let test_signature_redeclare () =
  let again = Signature.declare sg "plus" [ nat; nat ] nat ~attrs:[] in
  Alcotest.(check bool) "idempotent" true (Signature.op_equal again plus);
  Alcotest.check_raises "profile clash"
    (Invalid_argument "Signature.declare: \"plus\" redeclared")
    (fun () -> ignore (Signature.declare sg "plus" [ nat ] nat ~attrs:[]))

let test_constructors_of () =
  let ctors = Signature.constructors_of sg nat in
  Alcotest.(check (list string))
    "ctors" [ "zero"; "succ" ]
    (List.map (fun (o : Signature.op) -> o.Signature.name) ctors)

(* ------------------------------------------------------------------ *)
(* Terms *)

let test_app_arity_check () =
  Alcotest.check_raises "arity"
    (Invalid_argument "Term.app: succ expects 1 arguments, got 2")
    (fun () -> ignore (Term.app succ [ nat_term 0; nat_term 0 ]))

let test_app_sort_check () =
  let b = Term.tt in
  Alcotest.check_raises "sort"
    (Invalid_argument "Term.app: succ: argument of sort Bool where TNat expected")
    (fun () -> ignore (Term.app succ [ b ]))

let test_term_size_depth () =
  let t = Term.app plus [ nat_term 2; nat_term 3 ] in
  Alcotest.(check int) "size" 8 (Term.size t);
  Alcotest.(check int) "depth" 5 (Term.depth t)

let test_term_vars () =
  let t = Term.app plus [ x; Term.app plus [ y; x ] ] in
  Alcotest.(check (list string))
    "vars" [ "X"; "Y" ]
    (List.map (fun (v : Term.var) -> v.Term.v_name) (Term.vars t))

let test_term_replace () =
  let t = Term.app plus [ nat_term 1; nat_term 1 ] in
  let t' = Term.replace ~old:(nat_term 1) ~by:(nat_term 0) t in
  Alcotest.check term_testable "replaced"
    (Term.app plus [ nat_term 0; nat_term 0 ])
    t'

let test_term_eq_reflexivity_check () =
  Alcotest.check_raises "eq sort mismatch"
    (Invalid_argument "Term.eq: sorts TNat and Bool differ")
    (fun () -> ignore (Term.eq (nat_term 0) Term.tt))

(* ------------------------------------------------------------------ *)
(* Substitution and matching *)

let test_subst_apply () =
  let sub = Subst.of_list [ (match Term.view x with Term.Var v -> v | _ -> assert false), nat_term 2 ] in
  Alcotest.check term_testable "apply"
    (Term.app succ [ nat_term 2 ])
    (Subst.apply sub (Term.app succ [ x ]))

let test_match_simple () =
  let pat = Term.app plus [ Term.app succ [ x ]; y ] in
  let subject = Term.app plus [ nat_term 2; nat_term 1 ] in
  match Matching.match_ pat subject with
  | None -> Alcotest.fail "expected a match"
  | Some sub ->
    Alcotest.check term_testable "match x" (nat_term 1)
      (Subst.apply sub x);
    Alcotest.check term_testable "match y" (nat_term 1)
      (Subst.apply sub y)

let test_match_nonlinear () =
  let pat = Term.app plus [ x; x ] in
  Alcotest.(check bool) "equal args" true
    (Matching.matches pat (Term.app plus [ nat_term 1; nat_term 1 ]));
  Alcotest.(check bool) "unequal args" false
    (Matching.matches pat (Term.app plus [ nat_term 1; nat_term 2 ]))

let test_match_sort_guard () =
  Alcotest.(check bool) "var sort blocks" false
    (Matching.matches (Term.var "B" Sort.bool) (nat_term 0))

let test_unify_basic () =
  let t1 = Term.app plus [ x; nat_term 1 ] in
  let t2 = Term.app plus [ nat_term 2; y ] in
  match Matching.unify t1 t2 with
  | None -> Alcotest.fail "expected unifier"
  | Some sub ->
    Alcotest.check term_testable "both sides equal"
      (Subst.apply sub t1) (Subst.apply sub t2)

let test_unify_occurs_check () =
  Alcotest.(check bool) "occurs" true
    (Matching.unify x (Term.app succ [ x ]) = None)

(* ------------------------------------------------------------------ *)
(* AC *)

let u a b = Term.app union [ a; b ]

let test_ac_flatten () =
  let t = u (u (nat_term 0) (nat_term 1)) (u (nat_term 2) (nat_term 3)) in
  Alcotest.(check int) "flatten length" 4 (List.length (Ac.flatten union t))

let test_ac_equal () =
  let t1 = u (nat_term 0) (u (nat_term 1) (nat_term 2)) in
  let t2 = u (u (nat_term 2) (nat_term 0)) (nat_term 1) in
  Alcotest.(check bool) "ac equal" true (Ac.ac_equal t1 t2);
  Alcotest.(check bool) "not ac equal" false
    (Ac.ac_equal t1 (u (nat_term 0) (nat_term 1)))

let test_ac_match_var_absorbs () =
  let pat = u x y in
  let subject = u (nat_term 0) (u (nat_term 1) (nat_term 2)) in
  let matchers = Ac.match_ pat subject in
  Alcotest.(check bool) "several matchers" true (List.length matchers >= 3);
  List.iter
    (fun sub -> Alcotest.(check bool) "reconstructs" true
        (Ac.ac_equal (Subst.apply sub pat) subject))
    matchers

let test_ac_match_rigid () =
  let pat = u (Term.app succ [ x ]) y in
  let subject = u (nat_term 0) (u (nat_term 0) (nat_term 3)) in
  match Ac.match_first pat subject with
  | None -> Alcotest.fail "expected AC match"
  | Some sub ->
    Alcotest.check term_testable "x bound" (nat_term 2) (Subst.apply sub x)

let test_ac_match_failure () =
  let pat = u (Term.app succ [ x ]) (Term.app succ [ y ]) in
  let subject = u (nat_term 0) (nat_term 0) in
  Alcotest.(check bool) "no match" true (Ac.match_ pat subject = [])

(* ------------------------------------------------------------------ *)
(* Rewriting *)

let test_rewrite_addition () =
  let sys = Rewrite.make plus_rules in
  Alcotest.check term_testable "2+3=5" (nat_term 5)
    (Rewrite.normalize sys (Term.app plus [ nat_term 2; nat_term 3 ]))

let test_rewrite_steps_counted () =
  let sys = Rewrite.make plus_rules in
  Rewrite.reset_steps sys;
  ignore (Rewrite.normalize sys (Term.app plus [ nat_term 3; nat_term 4 ]));
  Alcotest.(check int) "4 steps" 4 (Rewrite.steps sys)

let test_rewrite_extend_shadows () =
  let sys = Rewrite.make plus_rules in
  let shadow =
    Rewrite.rule ~label:"shadow"
      (Term.app plus [ Term.const zero; y ])
      (Term.app succ [ y ])
  in
  let sys' = Rewrite.extend sys [ shadow ] in
  Alcotest.check term_testable "base unchanged" (nat_term 1)
    (Rewrite.normalize sys (Term.app plus [ nat_term 0; nat_term 1 ]));
  Alcotest.check term_testable "extension wins" (nat_term 2)
    (Rewrite.normalize sys' (Term.app plus [ nat_term 0; nat_term 1 ]))

let test_rewrite_conditional () =
  let is_zero = Signature.declare sg "is_zero" [ nat ] Sort.bool ~attrs:[] in
  let rules =
    [
      Rewrite.rule ~label:"is-zero-z" (Term.app is_zero [ Term.const zero ]) Term.tt;
      Rewrite.rule ~label:"is-zero-s"
        (Term.app is_zero [ Term.app succ [ x ] ])
        Term.ff;
      Rewrite.rule ~label:"guarded" ~cond:(Term.app is_zero [ x ])
        (Term.app plus [ x; y ])
        y;
    ]
  in
  let sys = Rewrite.make rules in
  Alcotest.check term_testable "guard true" (nat_term 7)
    (Rewrite.normalize sys (Term.app plus [ nat_term 0; nat_term 7 ]));
  Alcotest.check term_testable "guard false stays"
    (Term.app plus [ nat_term 1; nat_term 7 ])
    (Rewrite.normalize sys (Term.app plus [ nat_term 1; nat_term 7 ]))

let test_rewrite_step_limit () =
  let loop = Signature.declare sg "loop" [ nat ] nat ~attrs:[] in
  let rules =
    [
      Rewrite.rule ~label:"spin" (Term.app loop [ x ])
        (Term.app loop [ Term.app succ [ x ] ]);
    ]
  in
  let sys = Rewrite.make rules in
  Rewrite.set_step_limit sys 1000;
  Alcotest.check_raises "diverging system trips the limit"
    (Rewrite.Limit_exceeded { limit = Rewrite.Steps 1000; steps = 1000 }) (fun () ->
      ignore (Rewrite.normalize sys (Term.app loop [ nat_term 0 ])))

let test_rewrite_deadline () =
  let loop = Signature.declare sg "loop" [ nat ] nat ~attrs:[] in
  let rules =
    [
      Rewrite.rule ~label:"spin" (Term.app loop [ x ])
        (Term.app loop [ Term.app succ [ x ] ]);
    ]
  in
  let sys = Rewrite.make rules in
  Rewrite.set_deadline sys 0.02;
  match Rewrite.normalize sys (Term.app loop [ nat_term 0 ]) with
  | _ -> Alcotest.fail "diverging system returned a normal form"
  | exception Rewrite.Limit_exceeded { limit = Rewrite.Deadline d; steps } ->
    Alcotest.(check (float 1e-9)) "reported deadline" 0.02 d;
    Alcotest.(check bool) "some steps were counted" true (steps > 0)

let test_rewrite_rule_validation () =
  Alcotest.(check bool) "rhs extra var rejected" true
    (try
       ignore (Rewrite.rule ~label:"bad" (Term.app succ [ x ]) y);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Boolean ring *)

let p = Term.var "P" Sort.bool
let q = Term.var "Q" Sort.bool
let r = Term.var "R" Sort.bool

let atom name = Term.const (Signature.declare sg name [] Sort.bool ~attrs:[])
let pa = atom "pa"
let qa = atom "qa"
let ra = atom "ra"

let test_boolring_tautologies () =
  let open Term in
  let cases =
    [
      "excluded middle", or_ pa (not_ pa);
      "contraposition", iff (implies pa qa) (implies (not_ qa) (not_ pa));
      "peirce", implies (implies (implies pa qa) pa) pa;
      "de morgan", iff (not_ (and_ pa qa)) (or_ (not_ pa) (not_ qa));
      "distrib", iff (and_ pa (or_ qa ra)) (or_ (and_ pa qa) (and_ pa ra));
      "material", iff (implies pa qa) (or_ (not_ pa) qa);
    ]
  in
  List.iter
    (fun (name, t) ->
      Alcotest.(check bool) name true (Boolring.tautology t))
    cases

let test_boolring_non_tautologies () =
  let open Term in
  Alcotest.(check bool) "atom not valid" false (Boolring.tautology pa);
  Alcotest.(check bool) "affirming consequent" false
    (Boolring.tautology (implies (and_ (implies pa qa) qa) pa));
  Alcotest.(check bool) "contradiction is false" true
    (Boolring.is_false (Boolring.of_term (and_ pa (not_ pa))))

let test_boolring_assign () =
  let f = Term.implies pa qa in
  let poly = Boolring.of_term f in
  Alcotest.(check bool) "assign pa=false makes true" true
    (Boolring.is_true (Boolring.assign poly pa false));
  Alcotest.(check bool) "assign pa=true leaves qa" true
    (Boolring.equal (Boolring.assign poly pa true) (Boolring.atom qa))

let test_boolring_eq_atom_orientation () =
  let t1 = Term.eq (nat_term 1) (nat_term 2) in
  let t2 = Term.eq (nat_term 2) (nat_term 1) in
  Alcotest.(check bool) "oriented equal" true
    (Boolring.equal (Boolring.of_term t1) (Boolring.of_term t2));
  Alcotest.(check bool) "reflexive collapses" true
    (Boolring.is_true (Boolring.of_term (Term.eq (nat_term 1) (nat_term 1))))

let test_boolring_ite () =
  let f = Term.ite pa qa ra in
  (* if pa then qa else ra == (pa -> qa) and (not pa -> ra) *)
  let spec = Term.and_ (Term.implies pa qa) (Term.implies (Term.not_ pa) ra) in
  Alcotest.(check bool) "ite spec" true
    (Boolring.tautology (Term.iff f spec))

let test_boolring_rewrite_system () =
  let sys = Rewrite.make (Boolring.rewrite_rules ()) in
  let open Term in
  let taut = or_ pa (not_ pa) in
  Alcotest.check term_testable "rewrites to true" Term.tt
    (Rewrite.normalize sys taut);
  let contr = and_ pa (not_ pa) in
  Alcotest.check term_testable "rewrites to false" Term.ff
    (Rewrite.normalize sys contr)

(* ------------------------------------------------------------------ *)
(* If-lifting *)

let test_iflift () =
  let lift = Iflift.rules_for_op succ in
  let simplify = Iflift.simplify_rules nat in
  let sys = Rewrite.make (lift @ simplify) in
  let t = Term.app succ [ Term.ite pa (nat_term 0) (nat_term 1) ] in
  Alcotest.check term_testable "lifted"
    (Term.ite pa (nat_term 1) (nat_term 2))
    (Rewrite.normalize sys t);
  let collapsed = Term.app succ [ Term.ite pa (nat_term 3) (nat_term 3) ] in
  Alcotest.check term_testable "if-same" (nat_term 4)
    (Rewrite.normalize sys collapsed)

let test_term_collections () =
  let ts = [ nat_term 0; nat_term 1; nat_term 2; nat_term 1 ] in
  let set = List.fold_left (fun s t -> Term.Set.add t s) Term.Set.empty ts in
  Alcotest.(check int) "set deduplicates" 3 (Term.Set.cardinal set);
  let tbl = Term.Tbl.create 4 in
  List.iteri (fun i t -> Term.Tbl.replace tbl t i) ts;
  Alcotest.(check int) "tbl hashes structurally" 3 (Term.Tbl.length tbl);
  Alcotest.(check (option int)) "last write wins" (Some 3)
    (Term.Tbl.find_opt tbl (nat_term 1))

let test_subst_bind_conflicts () =
  let v = match Term.view x with Term.Var v -> v | _ -> assert false in
  let s1 = Subst.bind Subst.empty v (nat_term 1) in
  let s2 = Subst.bind s1 v (nat_term 1) in
  Alcotest.(check bool) "rebinding same value ok" true
    (Subst.bindings s1 = Subst.bindings s2);
  Alcotest.(check bool) "conflicting rebind rejected" true
    (try
       ignore (Subst.bind s1 v (nat_term 2));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "sort mismatch rejected" true
    (try
       ignore (Subst.bind Subst.empty v Term.tt);
       false
     with Invalid_argument _ -> true)

let test_ac_rebuild_empty () =
  Alcotest.check_raises "empty rebuild"
    (Invalid_argument "Ac.rebuild: empty argument list") (fun () ->
      ignore (Ac.rebuild union []))

let test_occurs_and_subterms () =
  let t = Term.app plus [ nat_term 1; Term.app succ [ x ] ] in
  Alcotest.(check bool) "var occurs" true (Term.occurs ~inside:t x);
  Alcotest.(check bool) "missing subterm" false
    (Term.occurs ~inside:t (nat_term 3));
  Alcotest.(check int) "subterm count = size" (Term.size t)
    (List.length (Term.subterms t))

let test_boolring_atom_requires_bool () =
  Alcotest.(check bool) "non-boolean atom rejected" true
    (try
       ignore (Boolring.atom (nat_term 1));
       false
     with Invalid_argument _ -> true)

let test_boolring_monomial_count () =
  let f = Term.xor pa (Term.xor qa (Term.and_ pa ra)) in
  Alcotest.(check int) "three monomials" 3
    (Boolring.count_monomials (Boolring.of_term f))

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_term =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then return (Term.const zero)
        else
          frequency
            [
              1, return (Term.const zero);
              2, map (fun t -> Term.app succ [ t ]) (self (n / 2));
              2,
              map2 (fun a b -> Term.app plus [ a; b ]) (self (n / 2)) (self (n / 2));
              2,
              map2 (fun a b -> Term.app union [ a; b ]) (self (n / 2)) (self (n / 2));
            ]))

let arb_term = QCheck.make ~print:Term.to_string gen_term

let prop_ac_normalize_idempotent =
  QCheck.Test.make ~name:"Ac.normalize idempotent" ~count:200 arb_term (fun t ->
      Term.equal (Ac.normalize (Ac.normalize t)) (Ac.normalize t))

let prop_ac_normalize_preserves_multiset =
  QCheck.Test.make ~name:"Ac.normalize preserves flattened multiset" ~count:200
    arb_term (fun t ->
      let sorted u = List.sort Term.compare (Ac.flatten union u) in
      (* Compare the multiset of union-leaves before and after, each leaf
         itself normalized. *)
      let before = List.map Ac.normalize (sorted t) in
      let after = sorted (Ac.normalize t) in
      List.length before = List.length after
      && List.for_all2 Term.equal (List.sort Term.compare before) after)

let prop_replace_identity =
  QCheck.Test.make ~name:"Term.replace with self is identity" ~count:200 arb_term
    (fun t -> Term.equal (Term.replace ~old:(nat_term 0) ~by:(nat_term 0) t) t)

let prop_size_positive =
  QCheck.Test.make ~name:"Term.size >= depth" ~count:200 arb_term (fun t ->
      Term.size t >= Term.depth t)

let gen_formula =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then oneof [ return pa; return qa; return ra; return Term.tt; return Term.ff ]
        else
          frequency
            [
              1, oneof [ return pa; return qa; return ra ];
              2, map Term.not_ (self (n / 2));
              2, map2 Term.and_ (self (n / 2)) (self (n / 2));
              2, map2 Term.or_ (self (n / 2)) (self (n / 2));
              1, map2 Term.implies (self (n / 2)) (self (n / 2));
              1, map2 Term.xor (self (n / 2)) (self (n / 2));
            ]))

let arb_formula = QCheck.make ~print:Term.to_string gen_formula

(* Reference semantics: evaluate under all 8 valuations of pa,qa,ra. *)
let rec eval env t =
  let module B = Signature.Builtin in
  match Term.view t with
  | Term.App (o, []) when Signature.op_equal o B.tt -> true
  | Term.App (o, []) when Signature.op_equal o B.ff -> false
  | Term.App (o, [ a ]) when Signature.op_equal o B.not_ -> not (eval env a)
  | Term.App (o, [ a; b ]) when Signature.op_equal o B.and_ -> eval env a && eval env b
  | Term.App (o, [ a; b ]) when Signature.op_equal o B.or_ -> eval env a || eval env b
  | Term.App (o, [ a; b ]) when Signature.op_equal o B.xor -> eval env a <> eval env b
  | Term.App (o, [ a; b ]) when Signature.op_equal o B.implies ->
    (not (eval env a)) || eval env b
  | _ -> List.assoc (Term.to_string t) env

let valuations =
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b -> List.map (fun c -> [ "pa", a; "qa", b; "ra", c ]) [ true; false ])
        [ true; false ])
    [ true; false ]

let prop_boolring_agrees_with_truth_tables =
  QCheck.Test.make ~name:"Boolring.tautology agrees with truth tables" ~count:300
    arb_formula (fun t ->
      Boolring.tautology t = List.for_all (fun env -> eval env t) valuations)

let prop_boolring_xor_involutive =
  QCheck.Test.make ~name:"p xor p xor q == q" ~count:200 arb_formula (fun t ->
      Boolring.equal
        (Boolring.of_term (Term.xor (Term.xor t t) qa))
        (Boolring.atom qa))

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
    [
      prop_ac_normalize_idempotent;
      prop_ac_normalize_preserves_multiset;
      prop_replace_identity;
      prop_size_positive;
      prop_boolring_agrees_with_truth_tables;
      prop_boolring_xor_involutive;
    ]

let tests =
  [
    "sort interning", `Quick, test_sort_interning;
    "sort visibility conflict", `Quick, test_sort_hidden_conflict;
    "signature redeclare", `Quick, test_signature_redeclare;
    "constructors_of", `Quick, test_constructors_of;
    "app arity check", `Quick, test_app_arity_check;
    "app sort check", `Quick, test_app_sort_check;
    "term size/depth", `Quick, test_term_size_depth;
    "term vars", `Quick, test_term_vars;
    "term replace", `Quick, test_term_replace;
    "eq sort mismatch", `Quick, test_term_eq_reflexivity_check;
    "subst apply", `Quick, test_subst_apply;
    "match simple", `Quick, test_match_simple;
    "match nonlinear", `Quick, test_match_nonlinear;
    "match sort guard", `Quick, test_match_sort_guard;
    "unify basic", `Quick, test_unify_basic;
    "unify occurs check", `Quick, test_unify_occurs_check;
    "ac flatten", `Quick, test_ac_flatten;
    "ac equal", `Quick, test_ac_equal;
    "ac match var absorbs", `Quick, test_ac_match_var_absorbs;
    "ac match rigid", `Quick, test_ac_match_rigid;
    "ac match failure", `Quick, test_ac_match_failure;
    "rewrite addition", `Quick, test_rewrite_addition;
    "rewrite steps counted", `Quick, test_rewrite_steps_counted;
    "rewrite extend shadows", `Quick, test_rewrite_extend_shadows;
    "rewrite conditional", `Quick, test_rewrite_conditional;
    "rewrite step limit", `Quick, test_rewrite_step_limit;
    "rewrite deadline", `Quick, test_rewrite_deadline;
    "rewrite rule validation", `Quick, test_rewrite_rule_validation;
    "boolring tautologies", `Quick, test_boolring_tautologies;
    "boolring non-tautologies", `Quick, test_boolring_non_tautologies;
    "boolring assign", `Quick, test_boolring_assign;
    "boolring eq orientation", `Quick, test_boolring_eq_atom_orientation;
    "boolring ite", `Quick, test_boolring_ite;
    "boolring rewrite system", `Quick, test_boolring_rewrite_system;
    "if lifting", `Quick, test_iflift;
    "term collections", `Quick, test_term_collections;
    "subst bind conflicts", `Quick, test_subst_bind_conflicts;
    "ac rebuild empty", `Quick, test_ac_rebuild_empty;
    "occurs and subterms", `Quick, test_occurs_and_subterms;
    "boolring atom sort check", `Quick, test_boolring_atom_requires_bool;
    "boolring monomial count", `Quick, test_boolring_monomial_count;
  ]
  @ qcheck_cases

let suite = "kernel", tests
