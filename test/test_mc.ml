(* Tests of the explicit-state model checker (the Murphi-style baseline):
   generic BFS behaviour, the TLS scenario (Section 5.3 counterexamples
   found automatically), and the NSPK case study with Lowe's attack. *)


(* ------------------------------------------------------------------ *)
(* Generic checker on a toy counter system *)

let counter_system ~limit =
  {
    Mc.initial = 0;
    next = (fun n -> if n >= limit then [] else [ "inc", n + 1 ]);
    key = string_of_int;
    show_action = Fun.id;
  }

let test_bfs_exhausts () =
  match Mc.bfs (counter_system ~limit:10) ~props:[ "small", (fun n -> n <= 10) ] with
  | Mc.No_violation stats ->
    Alcotest.(check int) "11 states" 11 stats.Mc.states_explored
  | _ -> Alcotest.fail "expected exhaustive pass"

let test_bfs_finds_min_trace () =
  match Mc.bfs (counter_system ~limit:10) ~props:[ "below-4", (fun n -> n < 4) ] with
  | Mc.Violation (v, _) ->
    Alcotest.(check int) "depth" 4 v.Mc.depth;
    Alcotest.(check (list string)) "trace" [ "inc"; "inc"; "inc"; "inc" ] v.Mc.trace
  | _ -> Alcotest.fail "expected violation"

let test_bfs_bounds () =
  match
    Mc.bfs ~max_depth:3 (counter_system ~limit:10)
      ~props:[ "below-7", (fun n -> n < 7) ]
  with
  | Mc.Out_of_bounds _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds"

let test_reachable () =
  match Mc.reachable (counter_system ~limit:10) ~goal:(fun n -> n = 7) with
  | Some (trace, state) ->
    Alcotest.(check int) "state" 7 state;
    Alcotest.(check int) "trace length" 7 (List.length trace)
  | None -> Alcotest.fail "expected witness"

let test_reachable_negative () =
  Alcotest.(check bool) "no witness" true
    (Mc.reachable (counter_system ~limit:10) ~goal:(fun n -> n = 42) = None)

(* ------------------------------------------------------------------ *)
(* TLS scenario *)

(* Lazy: building the concrete scenario extends the shared TLS model spec
   with the scenario's principals, which must not happen at module-init
   time — the analysis suite lints the pristine generated spec. *)
let tls_scen_l = lazy (Tls.Concrete.default_scenario ())
let tls_system_l = lazy (Tls.Concrete.system (Lazy.force tls_scen_l))

let test_tls_handshake_reachable () =
  match
    Mc.reachable ~max_states:20_000 ~max_depth:7 (Lazy.force tls_system_l)
      ~goal:(Tls.Concrete.handshake_complete (Lazy.force tls_scen_l))
  with
  | Some (trace, _) ->
    Alcotest.(check int) "seven steps" 7 (List.length trace);
    Alcotest.(check (list string))
      "honest run"
      [ "chello"; "shello"; "cert"; "kexch"; "cfin"; "sfin"; "compl" ]
      (List.map (fun (l : Tls.Concrete.label) -> l.Tls.Concrete.rule) trace)
  | None -> Alcotest.fail "handshake not reachable"

let test_tls_2prime_attack_found () =
  match
    Mc.bfs ~max_states:20_000 ~max_depth:6 (Lazy.force tls_system_l)
      ~props:[ "cf-authentic", Tls.Concrete.prop_cf_authentic ]
  with
  | Mc.Violation (v, _) ->
    Alcotest.(check int) "paper's five-message trace" 5 v.Mc.depth;
    let rules = List.map (fun (l : Tls.Concrete.label) -> l.Tls.Concrete.rule) v.Mc.trace in
    Alcotest.(check (list string))
      "trace shape"
      [ "chello"; "shello"; "cert"; "fakeKx2"; "fakeCf2" ]
      rules
  | _ -> Alcotest.fail "expected 2' violation"

let test_tls_positive_props_bounded () =
  match
    Mc.bfs ~max_states:4_000 ~max_depth:6 (Lazy.force tls_system_l)
      ~props:
        [
          "pms-secrecy", Tls.Concrete.prop_pms_secrecy (Lazy.force tls_scen_l);
          "sf-authentic", Tls.Concrete.prop_sf_authentic;
          "sf2-authentic", Tls.Concrete.prop_sf2_authentic;
        ]
  with
  | Mc.Violation (v, _) -> Alcotest.failf "unexpected violation of %s" v.Mc.property
  | Mc.No_violation _ | Mc.Out_of_bounds _ -> ()

let test_tls_knowledge () =
  let st = Tls.Concrete.initial (Lazy.force tls_scen_l) in
  let c = Tls.Scenario.cast in
  Alcotest.(check bool) "intruder pms known initially" true
    (Tls.Concrete.derivable st (Tls.Data.pms_ ~client:Tls.Data.intruder ~server:c.bob c.sec2));
  Alcotest.(check bool) "honest pms unknown" false
    (Tls.Concrete.derivable st (Tls.Data.pms_ ~client:c.alice ~server:c.bob c.sec1));
  Alcotest.(check bool) "public keys derivable" true
    (Tls.Concrete.derivable st (Tls.Data.pk_ c.alice))

let test_tls_oops_stays_safe () =
  (* Paulson's Oops rule: leaking established session keys must break
     neither pms secrecy nor server authentication (his analysis found
     resumption safe under such leaks; the paper discusses it in
     Section 6). *)
  let scen = { (Tls.Concrete.default_scenario ()) with Tls.Concrete.oops = true } in
  match
    Mc.bfs ~max_states:6_000 ~max_depth:7 (Tls.Concrete.system scen)
      ~props:
        [
          "pms-secrecy", Tls.Concrete.prop_pms_secrecy scen;
          "sf-authentic", Tls.Concrete.prop_sf_authentic;
          "sf2-authentic", Tls.Concrete.prop_sf2_authentic;
        ]
  with
  | Mc.Violation (v, _) -> Alcotest.failf "oops broke %s" v.Mc.property
  | Mc.No_violation _ | Mc.Out_of_bounds _ -> ()

let test_tls_oops_actually_leaks () =
  (* Sanity: under Oops the intruder really does obtain a session key. *)
  let scen = { (Tls.Concrete.default_scenario ()) with Tls.Concrete.oops = true } in
  let c = Tls.Scenario.cast in
  let key =
    Tls.Data.hkey_ c.Tls.Scenario.bob
      (Tls.Data.pms_ ~client:c.Tls.Scenario.alice ~server:c.Tls.Scenario.bob
         c.Tls.Scenario.sec1)
      c.Tls.Scenario.ra c.Tls.Scenario.rb
  in
  match
    Mc.reachable ~max_states:20_000 ~max_depth:8 (Tls.Concrete.system scen)
      ~goal:(fun st -> Tls.Concrete.derivable st key)
  with
  | Some (trace, _) ->
    Alcotest.(check bool) "trace mentions oops" true
      (List.exists (fun (l : Tls.Concrete.label) -> l.Tls.Concrete.rule = "oops") trace)
  | None -> Alcotest.fail "session key never leaked"

(* ------------------------------------------------------------------ *)
(* NSPK *)

let test_nspk_lowe_attack () =
  let scen = Nspk.default_scenario Nspk.Classic in
  match
    Mc.bfs ~max_states:100_000 ~max_depth:8 (Nspk.system scen)
      ~props:[ "responder-agreement", Nspk.responder_agreement ]
  with
  | Mc.Violation (v, _) ->
    (* Lowe's man-in-the-middle needs A to start a run with the intruder. *)
    let rules = List.map (fun (l : Nspk.label) -> l.Nspk.rule) v.Mc.trace in
    Alcotest.(check bool) "starts with a run towards the intruder" true
      (List.hd rules = "start");
    Alcotest.(check bool) "uses faked message 1" true (List.mem "fake-m1" rules);
    Alcotest.(check bool) "uses faked message 3" true (List.mem "fake-m3" rules)
  | _ -> Alcotest.fail "expected Lowe's attack"

let test_nspk_nonce_secrecy_broken () =
  let scen = Nspk.default_scenario Nspk.Classic in
  match
    Mc.bfs ~max_states:100_000 ~max_depth:8 (Nspk.system scen)
      ~props:[ "nonce-secrecy", Nspk.nonce_secrecy ]
  with
  | Mc.Violation _ -> ()
  | _ -> Alcotest.fail "expected nonce leak"

let test_nsl_fixed_is_clean () =
  (* Lowe's fix: same bounds under which the classic variant falls in
     seconds show no violation (the full space is infinite in the number of
     replayed fakes, so the check is bounded, as in Mitchell et al.). *)
  let scen = Nspk.default_scenario Nspk.Lowe_fixed in
  match
    Mc.bfs ~max_states:60_000 ~max_depth:8 (Nspk.system scen)
      ~props:
        [
          "responder-agreement", Nspk.responder_agreement;
          "nonce-secrecy", Nspk.nonce_secrecy;
        ]
  with
  | Mc.No_violation _ | Mc.Out_of_bounds _ -> ()
  | Mc.Violation (v, _) -> Alcotest.failf "unexpected violation of %s" v.Mc.property

let test_nspk_completes_honestly () =
  let scen = Nspk.default_scenario Nspk.Lowe_fixed in
  match
    Mc.reachable ~max_states:100_000 ~max_depth:6 (Nspk.system scen)
      ~goal:Nspk.some_responder_done
  with
  | Some (trace, _) ->
    Alcotest.(check bool) "at least 3 messages" true (List.length trace >= 3)
  | None -> Alcotest.fail "honest NSPK run should complete"

(* ------------------------------------------------------------------ *)
(* par_bfs: frontier-parallel exploration must agree with bfs exactly —
   same violation, same minimal trace, same state/transition counts. *)

let stats_sig (s : Mc.stats) =
  s.Mc.states_explored, s.Mc.transitions_fired, s.Mc.max_depth

let outcome_sig = function
  | Mc.No_violation s -> "none", "", [], 0, stats_sig s
  | Mc.Out_of_bounds s -> "bounds", "", [], 0, stats_sig s
  | Mc.Violation (v, s) ->
    "violation", v.Mc.property, v.Mc.trace, v.Mc.depth, stats_sig s

let check_par_agrees ?max_states ?max_depth name system ~props =
  let seq = Mc.bfs ?max_states ?max_depth system ~props in
  Sched.Pool.with_pool ~jobs:3 @@ fun pool ->
  let par = Mc.par_bfs ?max_states ?max_depth ~pool system ~props in
  Alcotest.(check bool) name true (outcome_sig seq = outcome_sig par)

let test_par_bfs_counter () =
  check_par_agrees "toy violation"
    (counter_system ~limit:10)
    ~props:[ "below-4", (fun n -> n < 4) ];
  check_par_agrees "toy exhaustion"
    (counter_system ~limit:10)
    ~props:[ "small", (fun n -> n <= 10) ];
  check_par_agrees ~max_depth:3 "toy bounds"
    (counter_system ~limit:10)
    ~props:[ "below-7", (fun n -> n < 7) ]

let test_par_bfs_lowe_attack () =
  let scen = Nspk.default_scenario Nspk.Classic in
  let props = [ "responder-agreement", Nspk.responder_agreement ] in
  let system = Nspk.system scen in
  (match Mc.bfs ~max_states:100_000 ~max_depth:8 system ~props with
  | Mc.Violation _ -> ()
  | _ -> Alcotest.fail "baseline should find Lowe's attack");
  check_par_agrees ~max_states:100_000 ~max_depth:8 "same attack, same trace"
    system ~props

let test_par_bfs_no_violation () =
  let scen = Nspk.default_scenario Nspk.Lowe_fixed in
  check_par_agrees ~max_states:60_000 ~max_depth:8 "NSL stays clean"
    (Nspk.system scen)
    ~props:
      [
        "responder-agreement", Nspk.responder_agreement;
        "nonce-secrecy", Nspk.nonce_secrecy;
      ]

let test_par_bfs_tls () =
  check_par_agrees ~max_states:20_000 ~max_depth:6 "2' counterexample"
    (Lazy.force tls_system_l)
    ~props:[ "cf-authentic", Tls.Concrete.prop_cf_authentic ]

let tests =
  [
    "bfs exhausts", `Quick, test_bfs_exhausts;
    "bfs minimal trace", `Quick, test_bfs_finds_min_trace;
    "bfs bounds", `Quick, test_bfs_bounds;
    "reachable", `Quick, test_reachable;
    "reachable negative", `Quick, test_reachable_negative;
    "tls handshake reachable", `Quick, test_tls_handshake_reachable;
    "tls 2' attack found", `Quick, test_tls_2prime_attack_found;
    "tls positive props bounded", `Quick, test_tls_positive_props_bounded;
    "tls knowledge", `Quick, test_tls_knowledge;
    "tls oops stays safe", `Quick, test_tls_oops_stays_safe;
    "tls oops actually leaks", `Quick, test_tls_oops_actually_leaks;
    "nspk lowe attack", `Quick, test_nspk_lowe_attack;
    "nspk nonce secrecy broken", `Quick, test_nspk_nonce_secrecy_broken;
    "nsl fixed clean", `Quick, test_nsl_fixed_is_clean;
    "nspk completes honestly", `Quick, test_nspk_completes_honestly;
    "par_bfs toy systems", `Quick, test_par_bfs_counter;
    "par_bfs lowe attack", `Quick, test_par_bfs_lowe_attack;
    "par_bfs no violation", `Quick, test_par_bfs_no_violation;
    "par_bfs tls 2'", `Quick, test_par_bfs_tls;
  ]

let suite = "model-checker", tests
