(* Aggregated test runner: each [Test_*] module exports a [suite].

   Every test case is wrapped to accumulate wall-clock time per suite; the
   totals print after the Alcotest summary, so a slow suite is visible at a
   glance instead of hiding inside the grand total. *)

let timings : (string * float ref) list ref = ref []

let timed (name, cases) =
  let total = ref 0. in
  timings := !timings @ [ (name, total) ];
  let wrap (case_name, speed, fn) =
    ( case_name,
      speed,
      fun arg ->
        let t0 = Unix.gettimeofday () in
        Fun.protect
          ~finally:(fun () -> total := !total +. (Unix.gettimeofday () -. t0))
          (fun () -> fn arg) )
  in
  (name, List.map wrap cases)

let report () =
  prerr_newline ();
  prerr_endline "Per-suite timing:";
  List.iter
    (fun (name, total) -> Printf.eprintf "  %-20s %8.3fs\n%!" name !total)
    !timings

let () =
  at_exit report;
  Alcotest.run "eqtls"
    (List.map timed
       [
         Test_kernel.suite;
         Test_hashcons.suite;
         Test_differential.suite;
         Test_completion.suite;
         Test_matching_props.suite;
         Test_dolevyao.suite;
         Test_cafeobj.suite;
         Test_analysis.suite;
         Test_export.suite;
         Test_core.suite;
         Test_prover.suite;
         Test_tls.suite;
         Test_proofs.suite;
         Test_mc.suite;
         Test_nspk_sym.suite;
         Test_sched.suite;
         Test_certify.suite;
       ])
