(* Aggregated test runner: each [Test_*] module exports a [suite].

   Every test case is wrapped to accumulate time per suite — on the
   monotonic clock, like every other timing in the stack, so an NTP step
   mid-run cannot produce negative or wild totals.  The footer prints
   after the Alcotest summary, slowest suite first, so the place to
   optimize is always the first line.  Suites that ran no cases (filtered
   out, or registering none) are listed apart instead of skewing the sort
   with 0.000s rows — [Timing] owns that logic and is itself under test
   (see [Test_index.timing_suite]). *)

let timings : (string * int ref * int ref) list ref = ref []

let timed (name, cases) =
  let total = ref 0 in
  let runs = ref 0 in
  timings := !timings @ [ (name, runs, total) ];
  let wrap (case_name, speed, fn) =
    ( case_name,
      speed,
      fun arg ->
        let t0 = Telemetry.Probe.now_ns () in
        Fun.protect
          ~finally:(fun () ->
            incr runs;
            total := !total + (Telemetry.Probe.now_ns () - t0))
          (fun () -> fn arg) )
  in
  (name, List.map wrap cases)

let report () =
  prerr_newline ();
  prerr_string
    (Timing.render
       (List.map
          (fun (name, runs, total) ->
            { Timing.e_name = name; e_runs = !runs; e_ns = !total })
          !timings));
  flush stderr

let () =
  at_exit report;
  Alcotest.run "eqtls"
    (List.map timed
       [
         Test_kernel.suite;
         Test_hashcons.suite;
         Test_differential.suite;
         Test_completion.suite;
         Test_matching_props.suite;
         Test_dolevyao.suite;
         Test_cafeobj.suite;
         Test_analysis.suite;
         Test_export.suite;
         Test_core.suite;
         Test_prover.suite;
         Test_tls.suite;
         Test_proofs.suite;
         Test_mc.suite;
         Test_mc_reduction.suite;
         Test_nspk_sym.suite;
         Test_sched.suite;
         Test_secrecy.suite;
         Test_server.suite;
         Test_certify.suite;
         Test_telemetry.suite;
         Test_obs.suite;
         Test_index.suite;
       ])
