(* Aggregated test runner: each [Test_*] module exports a [suite]. *)

let () =
  Alcotest.run "eqtls"
    [
      Test_kernel.suite;
      Test_completion.suite;
      Test_matching_props.suite;
      Test_dolevyao.suite;
      Test_cafeobj.suite;
      Test_analysis.suite;
      Test_export.suite;
      Test_core.suite;
      Test_prover.suite;
      Test_tls.suite;
      Test_proofs.suite;
      Test_mc.suite;
      Test_nspk_sym.suite;
      Test_sched.suite;
      Test_certify.suite;
    ]
