(* Randomized laws for substitution, matching, unification and AC matching:
   the soundness core the whole proof machinery rides on. *)

open Kernel

let nat = Sort.visible "MpNat"
let sg = Signature.create ()
let zero = Signature.declare sg "mp0" [] nat ~attrs:[ Signature.Ctor ]
let succ = Signature.declare sg "mpS" [ nat ] nat ~attrs:[ Signature.Ctor ]
let plus = Signature.declare sg "mpP" [ nat; nat ] nat ~attrs:[]
let union = Signature.declare sg "mpU" [ nat; nat ] nat ~attrs:[ Signature.Ac ]
let vx = { Term.v_name = "X"; v_sort = nat }
let vy = { Term.v_name = "Y"; v_sort = nat }
let tvx = Term.var "X" nat
let tvy = Term.var "Y" nat

let rec ground n =
  if n <= 0 then Term.const zero else Term.app succ [ ground (n - 1) ]

(* Random patterns over {0, S, P, U, X, Y}. *)
let gen_pattern =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof [ return tvx; return tvy; return (Term.const zero) ]
        else
          frequency
            [
              2, oneof [ return tvx; return tvy ];
              1, return (Term.const zero);
              2, map (fun t -> Term.app succ [ t ]) (self (n / 2));
              2, map2 (fun a b -> Term.app plus [ a; b ]) (self (n / 2)) (self (n / 2));
              2, map2 (fun a b -> Term.app union [ a; b ]) (self (n / 2)) (self (n / 2));
            ]))

let arb_pattern = QCheck.make ~print:Term.to_string gen_pattern

let arb_grounding =
  QCheck.make
    QCheck.Gen.(pair (int_bound 5) (int_bound 5))

let instantiate (nx, ny) pat =
  Subst.apply (Subst.of_list [ vx, ground nx; vy, ground ny ]) pat

let prop_match_own_instance =
  QCheck.Test.make ~name:"a pattern matches its own instances" ~count:300
    (QCheck.pair arb_pattern arb_grounding) (fun (pat, g) ->
      let subject = instantiate g pat in
      match Matching.match_ pat subject with
      | Some sub -> Term.equal (Subst.apply sub pat) subject
      | None -> false)

let prop_match_is_sound =
  QCheck.Test.make ~name:"every matcher reconstructs the subject" ~count:300
    (QCheck.pair arb_pattern arb_grounding) (fun (pat, g) ->
      let subject = instantiate g pat in
      match Matching.match_ pat subject with
      | None -> true
      | Some sub -> Term.equal (Subst.apply sub pat) subject)

let prop_unify_sound =
  QCheck.Test.make ~name:"unifiers unify" ~count:300
    (QCheck.pair arb_pattern arb_pattern) (fun (t1, t2) ->
      match Matching.unify t1 t2 with
      | None -> true
      | Some sub -> Term.equal (Subst.apply sub t1) (Subst.apply sub t2))

let prop_unify_reflexive =
  QCheck.Test.make ~name:"every term unifies with itself" ~count:300 arb_pattern
    (fun t -> Matching.unify t t <> None)

let prop_ac_matchers_sound =
  QCheck.Test.make ~name:"AC matchers reconstruct modulo AC" ~count:200
    (QCheck.pair arb_pattern arb_grounding) (fun (pat, g) ->
      let subject = instantiate g pat in
      List.for_all
        (fun sub -> Ac.ac_equal (Subst.apply sub pat) subject)
        (Ac.match_ pat subject))

let prop_ac_match_finds_instances =
  QCheck.Test.make ~name:"AC matching finds shuffled instances" ~count:200
    (QCheck.pair arb_pattern arb_grounding) (fun (pat, g) ->
      let subject = Ac.normalize (instantiate g pat) in
      Ac.match_ pat subject <> [])

let prop_subst_apply_ground_fixpoint =
  QCheck.Test.make ~name:"substitution fixes ground terms" ~count:200
    arb_grounding (fun (nx, ny) ->
      let t = Term.app plus [ ground nx; ground ny ] in
      Term.equal (Subst.apply (Subst.of_list [ vx, ground 1 ]) t) t)

let tests =
  List.map
    (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
    [
      prop_match_own_instance;
      prop_match_is_sound;
      prop_unify_sound;
      prop_unify_reflexive;
      prop_ac_matchers_sound;
      prop_ac_match_finds_instances;
      prop_subst_apply_ground_fixpoint;
    ]

let suite = "matching-properties", tests
