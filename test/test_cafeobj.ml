(* Tests of the mini-CafeOBJ layer: spec modules, free datatypes, the
   Hsiang BOOL module, and the concrete syntax (lexer, parser, eval). *)

open Kernel
module Spec = Cafeobj.Spec
module Datatype = Cafeobj.Datatype

let term_testable = Alcotest.testable Term.pp Term.equal

(* ------------------------------------------------------------------ *)
(* Spec modules *)

let test_spec_import_and_shadow () =
  let base = Spec.create "CO-BASE" in
  let nat = Spec.declare_sort base "CoNat" in
  let zero = Spec.declare_op base "co0" [] nat ~attrs:[ Signature.Ctor ] in
  let succ = Spec.declare_op base "coS" [ nat ] nat ~attrs:[ Signature.Ctor ] in
  let dbl = Spec.declare_op base "coDbl" [ nat ] nat ~attrs:[] in
  let x = Term.var "X" nat in
  Spec.add_eq base ~label:"co-dbl-0" (Term.app dbl [ Term.const zero ]) (Term.const zero);
  Spec.add_eq base ~label:"co-dbl-s"
    (Term.app dbl [ Term.app succ [ x ] ])
    (Term.app succ [ Term.app succ [ Term.app dbl [ x ] ] ]);
  let derived = Spec.create ~imports:[ base ] "CO-DERIVED" in
  Alcotest.(check bool) "op visible through import" true
    (Spec.find_op derived "coDbl" <> None);
  let two = Term.app succ [ Term.app succ [ Term.const zero ] ] in
  Alcotest.check term_testable "reduce through import"
    (Term.app succ [ Term.app succ [ two ] ])
    (Spec.reduce derived (Term.app dbl [ two ]));
  (* Shadowing: an own rule takes precedence over the import's. *)
  Spec.add_eq derived ~label:"co-shadow" (Term.app dbl [ Term.const zero ])
    (Term.app succ [ Term.const zero ]);
  Alcotest.check term_testable "own rule wins"
    (Term.app succ [ Term.const zero ])
    (Spec.reduce derived (Term.app dbl [ Term.const zero ]))

let test_reduce_in_assumptions () =
  let m = Spec.create "CO-ASSM" in
  let p = Term.const (Spec.declare_op m "co-p" [] Sort.bool ~attrs:[]) in
  let q = Term.const (Spec.declare_op m "co-q" [] Sort.bool ~attrs:[]) in
  (* Without the assumptions the conjunction is stuck (up to boolean
     canonicalization); record that form to compare against after close. *)
  let before = Spec.reduce m (Term.and_ p (Term.not_ q)) in
  Alcotest.check term_testable "open ... close semantics" Term.tt
    (Spec.reduce_in m
       ~assumptions:[ p, Term.tt; q, Term.ff ]
       (Term.and_ p (Term.not_ q)));
  (* The module itself is unchanged afterwards. *)
  Alcotest.check term_testable "module untouched" before
    (Spec.reduce m (Term.and_ p (Term.not_ q)))

let test_hsiang_module_complete () =
  (* The Hsiang system replaces (rather than extends) the constant-folding
     BOOL: mixing them loops (not p -> p xor true -> not p). *)
  let h = Cafeobj.Builtins.hsiang () in
  let m = Spec.create ~bool:false ~imports:[ h ] "CO-TAUT" in
  let p = Term.const (Spec.declare_op m "ct-p" [] Sort.bool ~attrs:[]) in
  let q = Term.const (Spec.declare_op m "ct-q" [] Sort.bool ~attrs:[]) in
  Alcotest.check term_testable "pierce reduces to true" Term.tt
    (Spec.reduce m (Term.implies (Term.implies (Term.implies p q) p) p));
  Alcotest.check term_testable "contradiction reduces to false" Term.ff
    (Spec.reduce m (Term.and_ q (Term.not_ q)))

(* ------------------------------------------------------------------ *)
(* Datatypes *)

let test_datatype_projections_and_recognizers () =
  let m = Spec.create "CO-PAIR" in
  let elt = Spec.declare_sort m "CoElt" in
  let pair = Spec.declare_sort m "CoPair" in
  let a = Term.const (Spec.declare_op m "co-a" [] elt ~attrs:[ Signature.Ctor ]) in
  let b = Term.const (Spec.declare_op m "co-b" [] elt ~attrs:[ Signature.Ctor ]) in
  let mk = Datatype.declare_ctor m ~sort:pair "co-mk" [ "co-fst", elt; "co-snd", elt ] in
  let unit_ = Datatype.declare_ctor m ~sort:pair "co-unit" [] in
  Datatype.finalize_sort m elt;
  Datatype.finalize_sort m pair;
  let fst_op = Option.get (Spec.find_op m "co-fst") in
  let pr = Term.app mk [ a; b ] in
  Alcotest.check term_testable "projection" a (Spec.reduce m (Term.app fst_op [ pr ]));
  let recog = Option.get (Spec.find_op m "co-mk?") in
  Alcotest.check term_testable "recognizer positive" Term.tt
    (Spec.reduce m (Term.app recog [ pr ]));
  Alcotest.check term_testable "recognizer negative" Term.ff
    (Spec.reduce m (Term.app recog [ Term.const unit_ ]));
  (* No-confusion equality. *)
  Alcotest.check term_testable "eq same ctor decomposes" Term.ff
    (Spec.reduce m (Term.eq pr (Term.app mk [ a; a ])));
  Alcotest.check term_testable "eq different ctors" Term.ff
    (Spec.reduce m (Term.eq pr (Term.const unit_)));
  Alcotest.check term_testable "reflexivity" Term.tt
    (Spec.reduce m (Term.eq pr pr))

let test_distinct_constants () =
  let m = Spec.create "CO-ENUM" in
  let color = Spec.declare_sort m "CoColor" in
  match Datatype.distinct_constants m ~sort:color [ "co-red"; "co-green"; "co-blue" ] with
  | [ r; g; b ] ->
    Alcotest.check term_testable "distinct" Term.ff (Spec.reduce m (Term.eq r g));
    Alcotest.check term_testable "distinct sym" Term.ff (Spec.reduce m (Term.eq g r));
    Alcotest.check term_testable "distinct 2" Term.ff (Spec.reduce m (Term.eq b r));
    Alcotest.(check bool) "self comparison is not false" true
      (not (Term.equal (Spec.reduce m (Term.eq r r)) Term.ff))
  | _ -> Alcotest.fail "expected three constants"

(* ------------------------------------------------------------------ *)
(* Lexer / parser *)

let test_lexer_tokens () =
  let toks = Cafeobj.Lexer.tokenize "mod M { op f : A -> B . } -- comment\nred f(x) ." in
  Alcotest.(check int) "token count" 18 (List.length toks)

let test_lexer_hidden_sort_brackets () =
  match Cafeobj.Lexer.tokenize "*[ Sys ]*" with
  | [ Cafeobj.Lexer.HLBRACKET; Cafeobj.Lexer.IDENT "Sys"; Cafeobj.Lexer.HRBRACKET; Cafeobj.Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "hidden sort brackets mis-lexed"

let test_lexer_error () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Cafeobj.Lexer.tokenize "op f : @ -> B .");
       false
     with Cafeobj.Lexer.Error _ -> true)

let test_parser_precedence () =
  (* "a and b or c" parses as "(a and b) or c"; "not a and b" as
     "(not a) and b"; implies is right-associative. *)
  let t = Cafeobj.Parser.parse_term_string "a and b or c" in
  (match t with
  | Cafeobj.Parser.TBin ("or", Cafeobj.Parser.TBin ("and", _, _), _) -> ()
  | _ -> Alcotest.fail "and/or precedence");
  let t = Cafeobj.Parser.parse_term_string "not a and b" in
  (match t with
  | Cafeobj.Parser.TBin ("and", Cafeobj.Parser.TNot _, _) -> ()
  | _ -> Alcotest.fail "not precedence");
  match Cafeobj.Parser.parse_term_string "a implies b implies c" with
  | Cafeobj.Parser.TBin ("implies", Cafeobj.Parser.TIdent "a", Cafeobj.Parser.TBin ("implies", _, _)) -> ()
  | _ -> Alcotest.fail "implies associativity"

let test_parser_module () =
  match Cafeobj.Parser.parse_string "mod M { [ A B ] op f : A -> B . var X : A . eq f(X) = f(X) . }" with
  | [ (Cafeobj.Parser.TModule ("M", decls), _) ] ->
    Alcotest.(check int) "4 declarations" 4 (List.length decls)
  | _ -> Alcotest.fail "module parse"

let test_parser_error () =
  Alcotest.(check bool) "missing dot" true
    (try
       ignore (Cafeobj.Parser.parse_string "mod M { op f : A -> B }");
       false
     with Cafeobj.Parser.Error _ -> true)

let msg_contains ~needle m =
  let n = String.length needle and h = String.length m in
  let rec go i = i + n <= h && (String.sub m i n = needle || go (i + 1)) in
  go 0

let test_lexer_error_position () =
  match Cafeobj.Lexer.tokenize "op f : A -> B .\n  op g : @ -> B ." with
  | exception Cafeobj.Lexer.Error { line; col; _ } ->
    Alcotest.(check int) "line" 2 line;
    Alcotest.(check int) "col" 10 col
  | _ -> Alcotest.fail "expected a lexer error"

let test_parser_error_position () =
  (* The offending token (the closing brace standing where '.' should be)
     sits on line 3; the error message must say so. *)
  match Cafeobj.Parser.parse_string "mod M {\n  op f : A -> B\n}" with
  | exception Cafeobj.Parser.Error m ->
    Alcotest.(check bool) ("cites line 3: " ^ m) true (msg_contains ~needle:"line 3" m)
  | _ -> Alcotest.fail "expected a parse error"

let test_eval_error_position () =
  (* Elaboration errors are prefixed with the declaration's position. *)
  let env = Cafeobj.Eval.create () in
  match
    Cafeobj.Eval.eval_string env
      "mod M {\n  [ S ]\n  op c : -> S .\n  eq c = nope .\n}"
  with
  | exception Cafeobj.Eval.Error m ->
    Alcotest.(check bool) ("cites line 4: " ^ m) true (msg_contains ~needle:"line 4" m)
  | _ -> Alcotest.fail "expected an eval error"

let test_spec_positions_recorded () =
  let env = Cafeobj.Eval.create () in
  ignore
    (Cafeobj.Eval.eval_string env
       "mod M {\n  [ S ]\n  op c : -> S .\n  op d : -> S .\n  eq d = c .\n}");
  let m = Option.get (Cafeobj.Eval.find_module env "M") in
  Alcotest.(check (option (pair int int))) "op position" (Some (3, 3))
    (Cafeobj.Spec.pos_of m "op:c");
  (* equation labels count from 1, per evaluator *)
  Alcotest.(check (option (pair int int))) "eq position" (Some (5, 3))
    (Cafeobj.Spec.pos_of m "eq:M-eq-1");
  Alcotest.(check (option (pair int int))) "unknown key" None
    (Cafeobj.Spec.pos_of m "op:zzz")

(* ------------------------------------------------------------------ *)
(* Eval *)

let eval_nat env =
  ignore
    (Cafeobj.Eval.eval_string env
       {|mod EVNAT {
           [ EvNat ]
           op e0 : -> EvNat { ctor } .
           op eS : EvNat -> EvNat { ctor } .
           op eplus : EvNat EvNat -> EvNat .
           vars M N : EvNat .
           eq eplus(e0, N) = N .
           eq eplus(eS(M), N) = eS(eplus(M, N)) .
         }|})

let test_eval_reduction () =
  let env = Cafeobj.Eval.create () in
  eval_nat env;
  let r = Cafeobj.Eval.reduce_string env "red in EVNAT : eplus(eS(e0), eS(e0)) ." in
  Alcotest.(check string) "1+1=2" "eS(eS(e0))"
    (Term.to_string r.Cafeobj.Eval.normal_form);
  Alcotest.(check bool) "steps counted" true (r.Cafeobj.Eval.steps >= 2)

let test_eval_free_ctor_equality () =
  let env = Cafeobj.Eval.create () in
  eval_nat env;
  let r = Cafeobj.Eval.reduce_string env "red in EVNAT : eS(e0) == e0 ." in
  Alcotest.(check string) "no confusion" "false"
    (Term.to_string r.Cafeobj.Eval.normal_form)

let test_eval_open_close () =
  let env = Cafeobj.Eval.create () in
  eval_nat env;
  let r =
    Cafeobj.Eval.reduce_string env
      {|open EVNAT
        op c : -> EvNat .
        eq c = eS(e0) .
        red eplus(c, c) .
        close|}
  in
  Alcotest.(check string) "assumption used" "eS(eS(e0))"
    (Term.to_string r.Cafeobj.Eval.normal_form)

let test_eval_unknown_identifier () =
  let env = Cafeobj.Eval.create () in
  eval_nat env;
  Alcotest.(check bool) "error raised" true
    (try
       ignore (Cafeobj.Eval.reduce_string env "red in EVNAT : nosuch(e0) .");
       false
     with Cafeobj.Eval.Error _ -> true)

let test_eval_conditional_equation () =
  let env = Cafeobj.Eval.create () in
  ignore
    (Cafeobj.Eval.eval_string env
       {|mod EVMAX {
           [ EvM ]
           op m0 : -> EvM { ctor } .
           op m1 : -> EvM { ctor } .
           op big? : EvM -> Bool .
           op pick : EvM EvM -> EvM .
           vars X Y : EvM .
           eq big?(m0) = false .
           eq big?(m1) = true .
           ceq pick(X, Y) = X if big?(X) .
           ceq pick(X, Y) = Y if not(big?(X)) .
         }|});
  let r = Cafeobj.Eval.reduce_string env "red in EVMAX : pick(m0, m1) ." in
  Alcotest.(check string) "condition routes" "m1" (Term.to_string r.Cafeobj.Eval.normal_form);
  let r = Cafeobj.Eval.reduce_string env "red in EVMAX : pick(m1, m0) ." in
  Alcotest.(check string) "condition routes 2" "m1" (Term.to_string r.Cafeobj.Eval.normal_form)

let find_spec name =
  let candidates =
    [ "../specs/" ^ name; "../../specs/" ^ name; "specs/" ^ name;
      "../../../specs/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "spec file %s not found from %s" name (Sys.getcwd ())

let test_eval_spec_files () =
  (* The shipped .cafe files must all evaluate without error, and the lock
     proof passages must reduce to true. *)
  let env = Cafeobj.Eval.create () in
  List.iter
    (fun path ->
      let path = find_spec path in
      let ic = open_in path in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      let outputs = Cafeobj.Eval.eval_string env src in
      List.iter
        (function
          | Cafeobj.Eval.Reduced r ->
            if String.length path >= 4 && Filename.basename path = "lock.cafe" then
              Alcotest.(check string)
                ("lock passage in " ^ path)
                "true"
                (Term.to_string r.Cafeobj.Eval.normal_form)
          | _ -> ())
        outputs)
    [ "peano.cafe"; "bool_demo.cafe"; "lock.cafe" ]

let tests =
  [
    "spec import and shadow", `Quick, test_spec_import_and_shadow;
    "reduce with assumptions", `Quick, test_reduce_in_assumptions;
    "hsiang module complete", `Quick, test_hsiang_module_complete;
    "datatype projections/recognizers", `Quick, test_datatype_projections_and_recognizers;
    "distinct constants", `Quick, test_distinct_constants;
    "lexer tokens", `Quick, test_lexer_tokens;
    "lexer hidden sort", `Quick, test_lexer_hidden_sort_brackets;
    "lexer error", `Quick, test_lexer_error;
    "parser precedence", `Quick, test_parser_precedence;
    "parser module", `Quick, test_parser_module;
    "parser error", `Quick, test_parser_error;
    "lexer error position", `Quick, test_lexer_error_position;
    "parser error position", `Quick, test_parser_error_position;
    "eval error position", `Quick, test_eval_error_position;
    "spec positions recorded", `Quick, test_spec_positions_recorded;
    "eval reduction", `Quick, test_eval_reduction;
    "eval free ctor equality", `Quick, test_eval_free_ctor_equality;
    "eval open/close", `Quick, test_eval_open_close;
    "eval unknown identifier", `Quick, test_eval_unknown_identifier;
    "eval conditional equation", `Quick, test_eval_conditional_equation;
    "eval spec files", `Quick, test_eval_spec_files;
  ]

let suite = "cafeobj", tests
