(* Tests of the LPO reduction order and Knuth-Bendix completion — including
   the classic completion of free groups into the ten-rule convergent
   system. *)

open Kernel

let g = Sort.visible "KbG"
let sg = Signature.create ()
let e_op = Signature.declare sg "kb-e" [] g ~attrs:[]
let i_op = Signature.declare sg "kb-i" [ g ] g ~attrs:[]
let mul_op = Signature.declare sg "kb-mul" [ g; g ] g ~attrs:[]
let e = Term.const e_op
let i t = Term.app i_op [ t ]
let mul a b = Term.app mul_op [ a; b ]
let x = Term.var "X" g
let y = Term.var "Y" g
let z = Term.var "Z" g

(* Precedence: i > mul > e (later = greater). *)
let prec = Order.precedence_of_list [ e_op; mul_op; i_op ]

let group_axioms =
  [
    mul e x, x;  (* left unit *)
    mul (i x) x, e;  (* left inverse *)
    mul (mul x y) z, mul x (mul y z);  (* associativity *)
  ]

(* ------------------------------------------------------------------ *)
(* LPO *)

let test_lpo_subterm () =
  Alcotest.(check bool) "f(x) > x" true (Order.lpo ~prec (i x) x);
  Alcotest.(check bool) "x < f(x)" false (Order.lpo ~prec x (i x))

let test_lpo_precedence () =
  Alcotest.(check bool) "i(x) > mul(x,x)" true
    (Order.lpo ~prec (i x) (mul x x));
  Alcotest.(check bool) "mul(x,x) > e" true (Order.lpo ~prec (mul x x) e)

let test_lpo_orients_group_axioms () =
  List.iter
    (fun (l, r) ->
      Alcotest.(check bool)
        (Term.to_string l ^ " -> " ^ Term.to_string r)
        true
        (Order.orients ~prec (l, r) = `Lr))
    group_axioms

let test_lpo_irreflexive_antisym () =
  let terms = [ e; x; i x; mul x y; mul (i x) (mul x y); i (mul x y) ] in
  List.iter
    (fun t ->
      Alcotest.(check bool) "irreflexive" false (Order.lpo ~prec t t))
    terms;
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          if Order.lpo ~prec t1 t2 then
            Alcotest.(check bool) "antisymmetric" false (Order.lpo ~prec t2 t1))
        terms)
    terms

let test_lpo_unorientable () =
  (* commutativity cannot be oriented by any simplification order *)
  Alcotest.(check bool) "comm" true
    (Order.orients ~prec (mul x y, mul y x) = `No)

let test_terminating_check () =
  let rules =
    List.map (fun (l, r) -> Rewrite.rule ~label:"ax" l r) group_axioms
  in
  Alcotest.(check bool) "axioms decrease" true (Order.terminating ~prec rules);
  let bad = Rewrite.rule ~label:"grow" (i x) (mul (i x) e) in
  Alcotest.(check bool) "growing rule rejected" false
    (Order.terminating ~prec [ bad ])

(* ------------------------------------------------------------------ *)
(* Critical pairs *)

let test_critical_pairs_assoc_unit () =
  (* Overlapping left-unit into associativity yields the classic pair. *)
  let assoc = Rewrite.rule ~label:"assoc" (mul (mul x y) z) (mul x (mul y z)) in
  let unit_ = Rewrite.rule ~label:"unit" (mul e x) x in
  let pairs = Completion.critical_pairs assoc unit_ in
  Alcotest.(check bool) "at least one pair" true (pairs <> []);
  (* Every critical pair must be a consequence of the axioms: check with
     the completed system below rather than syntactically here. *)
  ()

let test_self_overlap_skips_root () =
  let unit_ = Rewrite.rule ~label:"unit" (mul e x) x in
  (* The only overlap of the unit rule with itself is at the root; it must
     be skipped, giving no pairs. *)
  Alcotest.(check int) "no self pairs" 0
    (List.length (Completion.critical_pairs unit_ unit_))

let test_assoc_self_overlap () =
  (* The classic self-overlap: associativity overlaps itself below the
     root, with peak mul(mul(mul(x,y),z),w).  Dropping it (the old
     critical-pair enumeration did) silently weakens confluence checks. *)
  let assoc = Rewrite.rule ~label:"assoc" (mul (mul x y) z) (mul x (mul y z)) in
  let pairs = Completion.critical_pairs assoc assoc in
  Alcotest.(check bool) "assoc overlaps itself" true (pairs <> []);
  (* Associativity alone is convergent, so each pair joins under it. *)
  let sys = Rewrite.make [ assoc ] in
  List.iter
    (fun (l, r) ->
      Alcotest.(check bool)
        (Term.to_string l ^ " joins " ^ Term.to_string r)
        true
        (Term.equal (Rewrite.normalize sys l) (Rewrite.normalize sys r)))
    pairs;
  (* and the whole-system enumeration reports the same self-overlaps *)
  Alcotest.(check int) "all_critical_pairs includes self-overlaps"
    (List.length pairs)
    (List.length (Completion.all_critical_pairs [ assoc ]))

let test_search_precedence_group () =
  let rules =
    List.mapi
      (fun i (l, r) -> Rewrite.rule ~label:(Printf.sprintf "gax%d" i) l r)
      group_axioms
  in
  let res = Order.search_precedence ~ops:[ e_op; i_op; mul_op ] rules in
  Alcotest.(check int) "all axioms oriented" 0 (List.length res.Order.unoriented);
  Alcotest.(check bool) "found order passes the terminating check" true
    (Order.terminating ~prec:res.Order.prec rules)

let test_search_precedence_hint () =
  (* [a -> b] orients only if a > b; a hint listing a above b (later =
     greater) must be respected, and the reverse hint must fail. *)
  let a_op = Signature.declare sg "kb-ha" [] g ~attrs:[] in
  let b_op = Signature.declare sg "kb-hb" [] g ~attrs:[] in
  let r = Rewrite.rule ~label:"ab" (Term.const a_op) (Term.const b_op) in
  let ok = Order.search_precedence ~hint:[ b_op; a_op ] ~ops:[ a_op; b_op ] [ r ] in
  Alcotest.(check int) "hint b < a orients" 0 (List.length ok.Order.unoriented);
  let bad = Order.search_precedence ~hint:[ a_op; b_op ] ~ops:[ a_op; b_op ] [ r ] in
  Alcotest.(check int) "hint a < b cannot orient" 1
    (List.length bad.Order.unoriented)

(* ------------------------------------------------------------------ *)
(* Completion of free groups *)

let completed_rules =
  lazy
    (match Completion.complete ~max_rules:40 ~prec group_axioms with
    | Completion.Completed rules -> rules
    | Completion.Failed f -> Alcotest.failf "completion failed: %s" f.Completion.reason)

let test_group_completion_succeeds () =
  let rules = Lazy.force completed_rules in
  (* The canonical convergent presentation of free groups has 10 rules;
     our procedure may keep a few redundant (joinable) rules since it does
     not interreduce aggressively, but must stay in the same ballpark. *)
  Alcotest.(check bool) "at least 10 rules" true (List.length rules >= 10);
  Alcotest.(check bool) "at most 25 rules" true (List.length rules <= 25)

let check_joinable t1 t2 =
  Alcotest.(check bool)
    (Term.to_string t1 ^ " = " ^ Term.to_string t2)
    true
    (Completion.joinable (Lazy.force completed_rules) t1 t2)

let test_group_theorems () =
  check_joinable (mul x (i x)) e;  (* right inverse *)
  check_joinable (mul x e) x;  (* right unit *)
  check_joinable (i (i x)) x;  (* double inverse *)
  check_joinable (i e) e;  (* inverse of unit *)
  check_joinable (i (mul x y)) (mul (i y) (i x))  (* antihomomorphism *)

let test_group_non_theorems () =
  let rules = Lazy.force completed_rules in
  Alcotest.(check bool) "x = y is not a theorem" false
    (Completion.joinable rules x y);
  Alcotest.(check bool) "commutativity is not a theorem" false
    (Completion.joinable rules (mul x y) (mul y x))

let test_unorientable_failure () =
  match Completion.complete ~prec [ mul x y, mul y x ] with
  | Completion.Failed { unorientable = Some _; _ } -> ()
  | Completion.Failed f -> Alcotest.failf "wrong failure: %s" f.Completion.reason
  | Completion.Completed _ -> Alcotest.fail "commutativity completed?!"

let test_rule_limit () =
  match Completion.complete ~max_rules:1 ~prec group_axioms with
  | Completion.Failed { reason; _ } ->
    Alcotest.(check string) "limit" "rule limit exceeded" reason
  | Completion.Completed _ -> Alcotest.fail "expected failure at limit 1"

(* ------------------------------------------------------------------ *)
(* Properties over random group words *)

let gen_word =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then oneof [ return e; return x; return y; return z ]
        else
          frequency
            [
              1, oneof [ return e; return x; return y; return z ];
              2, map i (self (n / 2));
              3, map2 mul (self (n / 2)) (self (n / 2));
            ]))

let arb_word = QCheck.make ~print:Term.to_string gen_word

let normalize_word t =
  let sys = Rewrite.make (Lazy.force completed_rules) in
  Rewrite.normalize sys t

let prop_group_left_inverse =
  QCheck.Test.make ~name:"i(w)*w joins e for every word w" ~count:100 arb_word
    (fun w -> Completion.joinable (Lazy.force completed_rules) (mul (i w) w) e)

let prop_group_assoc_normal_forms =
  QCheck.Test.make ~name:"(u*v)*w and u*(v*w) share a normal form" ~count:100
    (QCheck.triple arb_word arb_word arb_word) (fun (u, v, w) ->
      Term.equal (normalize_word (mul (mul u v) w)) (normalize_word (mul u (mul v w))))

let prop_group_normalize_idempotent =
  QCheck.Test.make ~name:"group normal forms are stable" ~count:100 arb_word
    (fun w ->
      let nf = normalize_word w in
      Term.equal nf (normalize_word nf))

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
    [
      prop_group_left_inverse;
      prop_group_assoc_normal_forms;
      prop_group_normalize_idempotent;
    ]

let tests =
  [
    "lpo subterm", `Quick, test_lpo_subterm;
    "lpo precedence", `Quick, test_lpo_precedence;
    "lpo orients group axioms", `Quick, test_lpo_orients_group_axioms;
    "lpo irreflexive/antisymmetric", `Quick, test_lpo_irreflexive_antisym;
    "lpo unorientable comm", `Quick, test_lpo_unorientable;
    "terminating check", `Quick, test_terminating_check;
    "critical pairs assoc/unit", `Quick, test_critical_pairs_assoc_unit;
    "self overlap skips root", `Quick, test_self_overlap_skips_root;
    "assoc self overlap", `Quick, test_assoc_self_overlap;
    "search precedence group", `Quick, test_search_precedence_group;
    "search precedence hint", `Quick, test_search_precedence_hint;
    "group completion succeeds", `Quick, test_group_completion_succeeds;
    "group theorems", `Quick, test_group_theorems;
    "group non-theorems", `Quick, test_group_non_theorems;
    "unorientable failure", `Quick, test_unorientable_failure;
    "rule limit", `Quick, test_rule_limit;
  ]
  @ qcheck_cases

let suite = "completion", tests
