(* Telemetry suite.

   The instrumentation promises three things worth enforcing mechanically:
   spans nest properly per domain however the probes interleave, recording
   changes no observable result of the engine (normal forms, verdicts,
   step counts — checked differentially over every spec in specs/), and
   the Perfetto exporter emits exactly the JSON the viewers expect (golden
   string over a hand-built snapshot, which is deterministic where real
   timestamps are not). *)

module Probe = Telemetry.Probe

(* Every test leaves the global recorder the way it found it: disabled,
   empty, no span threshold. *)
let scrubbed f () =
  Fun.protect
    ~finally:(fun () ->
      Probe.set_enabled false;
      Probe.set_span_min_ns 0;
      Probe.reset ())
    (fun () ->
      Probe.set_enabled false;
      Probe.set_span_min_ns 0;
      Probe.reset ();
      f ())

(* ------------------------------------------------------------------ *)
(* Span nesting *)

(* A random tree of nested spans: [Node cs] runs its children in order
   inside one [with_span]. *)
type tree = Node of tree list

let rec tree_size (Node cs) = 1 + List.fold_left (fun n t -> n + tree_size t) 0 cs

let tree_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n = 0 then return (Node [])
           else
             int_range 0 3 >>= fun width ->
             list_size (return width) (self (n / (1 + width))) >>= fun cs ->
             return (Node cs)))

let rec record_tree i (Node cs) =
  Probe.with_span ~cat:"t" (Printf.sprintf "n%d" i) @@ fun () ->
  List.iteri record_tree cs

let properly_nested spans =
  (* pairwise: same-domain spans are disjoint or contained, and strict
     containment implies strictly greater depth *)
  let ival (s : Probe.span) = s.Probe.sp_t0, s.Probe.sp_t0 + s.Probe.sp_dur in
  List.for_all
    (fun (a : Probe.span) ->
      List.for_all
        (fun (b : Probe.span) ->
          a == b
          || a.Probe.sp_dom <> b.Probe.sp_dom
          ||
          let a0, a1 = ival a and b0, b1 = ival b in
          let disjoint = a1 <= b0 || b1 <= a0 in
          let a_in_b = b0 <= a0 && a1 <= b1 in
          let b_in_a = a0 <= b0 && b1 <= a1 in
          (disjoint || a_in_b || b_in_a)
          && ((not (a_in_b && not b_in_a)) || a.Probe.sp_depth > b.Probe.sp_depth))
        spans)
    spans

let prop_nesting =
  QCheck.Test.make ~count:100 ~name:"with_span nests properly"
    (QCheck.make ~print:(fun t -> string_of_int (tree_size t)) tree_gen)
    (fun tree ->
      Probe.reset ();
      Probe.set_enabled true;
      record_tree 0 tree;
      Probe.set_enabled false;
      let snap = Probe.snapshot () in
      List.length snap.Probe.sn_spans = tree_size tree
      && properly_nested snap.Probe.sn_spans)

let test_nesting_qcheck =
  (* scrub around the whole QCheck run; the property resets per trial *)
  let name, speed, run = QCheck_alcotest.to_alcotest prop_nesting in
  (name, speed, fun arg -> scrubbed (fun () -> run arg) ())

(* ------------------------------------------------------------------ *)
(* Recording must not change what the engine computes *)

let test_differential_on_off () =
  List.iter
    (fun (file, path) ->
      let src = Test_differential.read_file path in
      Probe.reset ();
      let off = Test_differential.run ~uncached:false src in
      Probe.set_enabled true;
      let on = Test_differential.run ~uncached:false src in
      Probe.set_enabled false;
      (* structural equality covers normal forms, verdicts and exact step
         counts — the zero-cost claim, checked observably *)
      if off <> on then
        Alcotest.failf "%s: outputs differ with telemetry enabled" file;
      let snap = Probe.snapshot () in
      if snap.Probe.sn_spans = [] then
        Alcotest.failf "%s: enabled run recorded no spans" file)
    (Test_differential.all_specs ())

(* ------------------------------------------------------------------ *)
(* Concurrent recording *)

let test_concurrent_pool () =
  let c = Probe.counter "test.concurrent" in
  Probe.set_enabled true;
  let n = 200 in
  let results =
    Sched.Pool.with_pool ~jobs:4 @@ fun pool ->
    Sched.Pool.parallel_map pool
      (fun i ->
        Probe.with_span ~cat:"outer" "o" @@ fun () ->
        Probe.add c i;
        Probe.with_span ~cat:"inner" "i" (fun () -> i * 2))
      (List.init n (fun i -> i))
  in
  Probe.set_enabled false;
  Alcotest.(check (list int))
    "pool results intact"
    (List.init n (fun i -> i * 2))
    results;
  Alcotest.(check int) "counter merges across domains" (n * (n - 1) / 2) (Probe.value c);
  let snap = Probe.snapshot () in
  let spans = snap.Probe.sn_spans in
  Alcotest.(check int) "two spans per task" (2 * n)
    (List.length (List.filter (fun (s : Probe.span) -> s.Probe.sp_cat <> "sched") spans));
  Alcotest.(check bool) "properly nested per domain" true (properly_nested spans);
  let doms =
    List.sort_uniq compare (List.map (fun (s : Probe.span) -> s.Probe.sp_dom) spans)
  in
  Alcotest.(check bool) "spans attributed to some domain" true (doms <> [])

(* ------------------------------------------------------------------ *)
(* Perfetto golden *)

let golden_snapshot : Probe.snapshot =
  {
    Probe.sn_spans =
      [
        {
          Probe.sp_name = "invariant:inv1";
          sp_cat = "invariant";
          sp_t0 = 1000;
          sp_dur = 5000;
          sp_dom = 0;
          sp_depth = 0;
          sp_req = "";
        };
        {
          Probe.sp_name = "inv1@init";
          sp_cat = "case";
          sp_t0 = 1500;
          sp_dur = 2500;
          sp_dom = 0;
          sp_depth = 1;
          sp_req = "";
        };
        {
          Probe.sp_name = "red";
          sp_cat = "red";
          sp_t0 = 2000;
          sp_dur = 1000;
          sp_dom = 1;
          sp_depth = 0;
          sp_req = "req-42";
        };
      ];
    sn_rules = [];
    sn_counters = [ "kernel.ac.backtracks", 7 ];
    sn_gauges = [ "sched.utilization", 0.5 ];
    sn_dropped = 2;
    sn_dropped_by_dom = [ 1, 2 ];
    sn_t0 = 1000;
  }

let golden_json =
  String.concat "\n"
    [
      "{\"traceEvents\":[";
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"eqtls\"}},";
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"domain 0\"}},";
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"domain 1\"}},";
      "{\"name\":\"invariant:inv1\",\"cat\":\"invariant\",\"ph\":\"X\",\"ts\":0.000,\"dur\":5.000,\"pid\":1,\"tid\":0},";
      "{\"name\":\"inv1@init\",\"cat\":\"case\",\"ph\":\"X\",\"ts\":0.500,\"dur\":2.500,\"pid\":1,\"tid\":0},";
      "{\"name\":\"red\",\"cat\":\"red\",\"ph\":\"X\",\"ts\":1.000,\"dur\":1.000,\"pid\":1,\"tid\":1,\"args\":{\"req\":\"req-42\"}}";
      "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"kernel.ac.backtracks\":7,\"sched.utilization\":0.5,\"spans_dropped\":2,\"spans_dropped_dom1\":2}}";
      "";
    ]

let test_perfetto_golden () =
  Alcotest.(check string)
    "golden trace JSON"
    golden_json
    (Telemetry.Perfetto.to_string ~process_name:"eqtls" golden_snapshot)

(* ------------------------------------------------------------------ *)
(* Rule stats agree with the step counter *)

let pnat_src =
  "mod TPNAT { [ TNat ] op z : -> TNat { ctor } . op s : TNat -> TNat { ctor \
   } . op plus : TNat TNat -> TNat . vars M N : TNat . eq plus(z, N) = N . \
   eq plus(s(M), N) = s(plus(M, N)) . }\n\
   red in TPNAT : plus(s(s(s(z))), s(s(z))) .\n"

let test_rule_stats_vs_steps () =
  Probe.set_enabled true;
  let env = Cafeobj.Eval.create () in
  let outputs = Cafeobj.Eval.eval_string env pnat_src in
  Probe.set_enabled false;
  let steps =
    List.fold_left
      (fun acc o ->
        match o with Cafeobj.Eval.Reduced r -> acc + r.Cafeobj.Eval.steps | _ -> acc)
      0 outputs
  in
  let snap = Probe.snapshot () in
  let fires =
    List.fold_left (fun acc (r : Probe.rule_stat) -> acc + r.Probe.rl_fires) 0
      snap.Probe.sn_rules
  in
  let tries =
    List.fold_left
      (fun acc (r : Probe.rule_stat) -> acc + r.Probe.rl_match_tries)
      0 snap.Probe.sn_rules
  in
  Alcotest.(check bool) "red performed steps" true (steps > 0);
  Alcotest.(check int) "profiled fires = counted rewrite steps" steps fires;
  (* every fire starts with a successful root-match attempt, so per run
     the match-try count dominates the fire count *)
  Alcotest.(check bool) "match tries >= fires" true (tries >= fires)

(* ------------------------------------------------------------------ *)
(* Disabled means nothing is recorded *)

let test_disabled_records_nothing () =
  let c = Probe.counter "test.disabled" in
  Probe.with_span ~cat:"x" "x" (fun () -> Probe.incr c);
  Probe.span_since ~cat:"x" "y" (Probe.now_ns ());
  (* a red through the instrumented kernel, recording off: the rewriter
     must take the guard's unprobed path *)
  let env = Cafeobj.Eval.create () in
  ignore (Cafeobj.Eval.eval_string env pnat_src);
  let snap = Probe.snapshot () in
  Alcotest.(check int) "no spans" 0 (List.length snap.Probe.sn_spans);
  Alcotest.(check int) "counter untouched" 0 (Probe.value c);
  Alcotest.(check int) "no rule stats" 0 (List.length snap.Probe.sn_rules)

let suite =
  ( "telemetry",
    [
      test_nesting_qcheck;
      Alcotest.test_case "on/off differential over specs/" `Slow
        (scrubbed test_differential_on_off);
      Alcotest.test_case "concurrent recording on the pool" `Quick
        (scrubbed test_concurrent_pool);
      Alcotest.test_case "perfetto golden JSON" `Quick
        (scrubbed test_perfetto_golden);
      Alcotest.test_case "rule stats agree with step counter" `Quick
        (scrubbed test_rule_stats_vs_steps);
      Alcotest.test_case "disabled records nothing" `Quick
        (scrubbed test_disabled_records_nothing);
    ] )
