(** Lexer for the mini-CafeOBJ concrete syntax. *)

type token =
  | IDENT of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | HLBRACKET  (** [*\[] — opens a hidden-sort declaration *)
  | HRBRACKET  (** [\]*] *)
  | COLON
  | COMMA
  | DOT
  | ARROW  (** [->] *)
  | EQUALS  (** [=] — the equation separator *)
  | EQEQ  (** [==] — the equality predicate inside terms *)
  | KW of string  (** keywords: mod, pr, op, var, eq, ceq, red, open, close,
                      if, then, else, fi, in, and, or, xor, not, implies,
                      iff, true, false, show *)
  | EOF

exception Error of { line : int; message : string }

(** [tokenize src] lexes a whole source string.  Comments run from [--] to
    the end of the line.  Identifiers may contain letters, digits, [-], [_],
    [?], ['] and [#]. *)
val tokenize : string -> token list

val pp_token : Format.formatter -> token -> unit
