(** Builtin modules available to every specification. *)

open Kernel

(** [bool_spec ()] is the BOOL module: sorts [Bool], the usual connectives,
    and the Hsiang rewrite system that is complete for propositional logic
    (Section 2.1 of the paper). Every module created with [Spec.create]
    imports it implicitly. *)
val bool_spec : unit -> Spec.t

(** [hsiang ()] is the complete Hsiang system for propositional logic
    (Section 2.1, reference [5] of the paper): reduces every tautology to
    [true] and every contradiction to [false].  Kept out of the implicit
    import because its distribution rule can blow up when mixed with large
    protocol rule sets.  Import it with [Spec.create ~bool:false]: combined
    with the constant-folding BOOL the two orientations of [not] loop. *)
val hsiang : unit -> Spec.t

(** [add_if_rules spec sort] makes [if_then_else] usable at [sort] in
    [spec]: declares nothing (the operator is interned globally) but adds the
    simplification rules [if true …], [if false …], [if c x x = x]. *)
val add_if_rules : Spec.t -> Sort.t -> unit

(** [add_iflift_rules spec] adds the lifting rules for every operator
    declared by [spec] itself (see {!Kernel.Iflift}); call it after all
    operator declarations. *)
val add_iflift_rules : Spec.t -> unit
