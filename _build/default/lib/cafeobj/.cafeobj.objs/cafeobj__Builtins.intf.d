lib/cafeobj/builtins.mli: Kernel Sort Spec
