lib/cafeobj/spec.ml: Boolring Format Hashtbl Kernel Lazy List Printf Rewrite Signature Sort String
