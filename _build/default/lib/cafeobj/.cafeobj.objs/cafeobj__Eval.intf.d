lib/cafeobj/eval.mli: Format Kernel Parser Spec Term
