lib/cafeobj/lexer.ml: Format List Printf String
