lib/cafeobj/datatype.ml: Kernel List Printf Rewrite Signature Sort Spec Term
