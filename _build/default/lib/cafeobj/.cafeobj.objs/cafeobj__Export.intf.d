lib/cafeobj/export.mli: Kernel Spec Term
