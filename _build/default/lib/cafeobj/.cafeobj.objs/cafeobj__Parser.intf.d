lib/cafeobj/parser.mli: Lexer
