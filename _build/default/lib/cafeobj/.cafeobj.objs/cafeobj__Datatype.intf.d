lib/cafeobj/datatype.mli: Kernel Rewrite Signature Sort Spec Term
