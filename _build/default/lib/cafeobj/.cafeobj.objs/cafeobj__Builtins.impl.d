lib/cafeobj/builtins.ml: Boolring Iflift Kernel Lazy List Spec
