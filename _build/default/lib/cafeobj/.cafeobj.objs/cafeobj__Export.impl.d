lib/cafeobj/export.ml: Buffer Eval Hashtbl Kernel Lazy List Option Printf Rewrite Signature Sort Spec String Term
