lib/cafeobj/eval.ml: Builtins Datatype Format Hashtbl Kernel List Option Parser Printf Rewrite Signature Sort Spec Term
