lib/cafeobj/spec.mli: Format Kernel Lazy Rewrite Signature Sort Term
