lib/cafeobj/parser.ml: Format Lexer List Printf
