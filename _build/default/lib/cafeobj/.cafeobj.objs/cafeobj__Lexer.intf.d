lib/cafeobj/lexer.mli: Format
