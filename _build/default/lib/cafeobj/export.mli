(** Export of specification modules as mini-CafeOBJ concrete syntax.

    [to_source spec] flattens [spec] (own declarations plus imports, in
    dependency order) into a program that {!Eval.eval_string} accepts and
    that reproduces the same rewrite relation.  This regenerates the
    paper's artifact — the CafeOBJ text of the protocol specification —
    from the programmatic model.

    Operator names that the lexer cannot read (the bag constructor [_,_])
    are renamed consistently; variables are renamed apart per sort, since
    the surface syntax scopes variable declarations per module while the
    internal rules may reuse one name at several sorts. *)

open Kernel

(** [to_source spec] is the flattened program text. *)
val to_source : Spec.t -> string

(** [term_to_source t] prints one term in the concrete syntax (equality as
    [==], connectives infix, [if _ then _ else _ fi]). *)
val term_to_source : Term.t -> string

(** [roundtrip spec] evaluates the exported source in a fresh environment
    and returns the reconstructed module (for tests).
    @raise Eval.Error if the export does not parse back. *)
val roundtrip : Spec.t -> Spec.t
