type token =
  | IDENT of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | HLBRACKET
  | HRBRACKET
  | COLON
  | COMMA
  | DOT
  | ARROW
  | EQUALS
  | EQEQ
  | KW of string
  | EOF

exception Error of { line : int; message : string }

let keywords =
  [
    "mod"; "pr"; "op"; "ctor"; "var"; "vars"; "eq"; "ceq"; "red"; "open";
    "close"; "if"; "then"; "else"; "fi"; "in"; "and"; "or"; "xor"; "not";
    "implies"; "iff"; "true"; "false"; "show"; "assoc"; "comm";
  ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '?' || c = '\'' || c = '#'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let fail message = raise (Error { line = !line; message }) in
  let rec go i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      let c = src.[i] in
      match c with
      | '\n' ->
        incr line;
        go (i + 1) acc
      | ' ' | '\t' | '\r' -> go (i + 1) acc
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i) acc
      | '-' when i + 1 < n && src.[i + 1] = '>' -> go (i + 2) (ARROW :: acc)
      | '(' -> go (i + 1) (LPAREN :: acc)
      | ')' -> go (i + 1) (RPAREN :: acc)
      | '{' -> go (i + 1) (LBRACE :: acc)
      | '}' -> go (i + 1) (RBRACE :: acc)
      | '*' when i + 1 < n && src.[i + 1] = '[' -> go (i + 2) (HLBRACKET :: acc)
      | ']' when i + 1 < n && src.[i + 1] = '*' -> go (i + 2) (HRBRACKET :: acc)
      | '[' -> go (i + 1) (LBRACKET :: acc)
      | ']' -> go (i + 1) (RBRACKET :: acc)
      | ':' -> go (i + 1) (COLON :: acc)
      | ',' -> go (i + 1) (COMMA :: acc)
      | '.' -> go (i + 1) (DOT :: acc)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> go (i + 2) (EQEQ :: acc)
      | '=' -> go (i + 1) (EQUALS :: acc)
      | c when is_ident_char c ->
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let j = scan i in
        let word = String.sub src i (j - i) in
        let tok = if List.mem word keywords then KW word else IDENT word in
        go j (tok :: acc)
      | c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %S" s
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | HLBRACKET -> Format.pp_print_string ppf "'*['"
  | HRBRACKET -> Format.pp_print_string ppf "']*'"
  | COLON -> Format.pp_print_string ppf "':'"
  | COMMA -> Format.pp_print_string ppf "','"
  | DOT -> Format.pp_print_string ppf "'.'"
  | ARROW -> Format.pp_print_string ppf "'->'"
  | EQUALS -> Format.pp_print_string ppf "'='"
  | EQEQ -> Format.pp_print_string ppf "'=='"
  | KW s -> Format.fprintf ppf "keyword %S" s
  | EOF -> Format.pp_print_string ppf "end of input"
