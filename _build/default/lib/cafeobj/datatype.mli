(** Free constructor datatypes with derived operations.

    Section 4.2 of the paper declares, for every data constructor such as
    [pms], projection operators ([client], [server], [secret]) returning its
    arguments, and for every message constructor [x] a recognizer predicate
    [x?].  Because the cryptosystem is assumed perfect, all these
    constructors are {e free}: two constructor terms are equal iff they share
    the constructor and their arguments are pairwise equal.

    This module automates those declarations:

    - {!declare_ctor} declares a constructor together with its projections
      and the projection-defining equations;
    - {!finalize_sort} (called once all constructors of a sort are known)
      declares the recognizers and generates the recognizer equations and
      the no-confusion equality theory of the sort. *)

open Kernel

(** [declare_ctor spec ~sort name fields] declares constructor
    [name : sorts(fields) -> sort] (attribute [Ctor]) plus one projection
    operator per field.  Fields are [(projection_name, field_sort)]; a
    projection with the same name and profile may be shared by several
    constructors of the sort (e.g. [src] over all ten message kinds). *)
val declare_ctor :
  Spec.t -> sort:Sort.t -> string -> (string * Sort.t) list -> Signature.op

(** [finalize_sort spec sort] generates, for the constructors of [sort]
    declared so far in [spec]'s own signature:

    - recognizers [c?] with [c?(c(..)) = true] and [c?(d(..)) = false] for
      every other constructor [d];
    - equality decomposition: [c(xs) = c(ys)] rewrites to the conjunction of
      argument equalities, and [c(xs) = d(ys)] to [false] for [c <> d].

    Recognizer operators are named [<ctor>?]. *)
val finalize_sort : Spec.t -> Sort.t -> unit

(** [equality_rules_for ~ctors sort] is the raw no-confusion/no-junk
    equality rule set for [sort] given its constructor list (exposed for the
    prover's tests and for sorts whose constructors live outside a spec
    module).  Always includes reflexivity [X = X -> true]. *)
val equality_rules_for : ctors:Signature.op list -> Sort.t -> Rewrite.rule list

(** [distinct_constants spec ~sort names] declares each name as a constant
    constructor of [sort] and adds the disequality rules between each new
    constant and every other constructor constant of the sort already
    declared in [spec] (in both orientations, since the rewrite relation is
    not symmetric).  Used to populate finite scenarios for concrete protocol
    runs: the principals, nonces and cipher suites of an execution must be
    pairwise distinct for the effective conditions to evaluate. *)
val distinct_constants :
  Spec.t -> sort:Sort.t -> string list -> Term.t list
