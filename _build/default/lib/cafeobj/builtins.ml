open Kernel

let bool_spec () = Lazy.force Spec.bool_spec

let hsiang_spec =
  lazy
    (let m = Spec.create ~bool:false "BOOL-HSIANG" in
     ignore (Spec.declare_sort m "Bool");
     List.iter (Spec.add_rule m) (Boolring.rewrite_rules ());
     m)

let hsiang () = Lazy.force hsiang_spec

let add_if_rules spec sort =
  List.iter (Spec.add_rule spec) (Iflift.simplify_rules sort)

let add_iflift_rules spec =
  List.iter
    (fun op -> List.iter (Spec.add_rule spec) (Iflift.rules_for_op op))
    (Spec.own_ops spec)
