lib/proofs/tls_invariants.ml: Core Induction Kernel Lazy List String Term Tls
