lib/proofs/tls_invariants.mli: Core Induction Kernel Prover Term Tls
