lib/core/induction.mli: Cafeobj Kernel Ots Prover Rewrite Sort Term
