lib/core/ots.mli: Kernel Signature Sort Term
