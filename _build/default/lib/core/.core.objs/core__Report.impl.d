lib/core/report.ml: Format Induction List Prover
