lib/core/induction.ml: Cafeobj Hashtbl Kernel List Ots Printf Prover Signature Sort String Term Unix
