lib/core/prover.mli: Format Kernel Rewrite Signature Sort Term
