lib/core/prover.ml: Boolring Format Kernel List Printf Rewrite Signature Sort Term
