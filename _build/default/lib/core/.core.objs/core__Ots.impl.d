lib/core/ots.ml: Kernel List Printf Signature Sort String Term
