lib/core/report.mli: Format Induction Prover
