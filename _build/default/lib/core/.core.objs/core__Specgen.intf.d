lib/core/specgen.mli: Cafeobj Kernel Ots Term
