lib/core/specgen.ml: Cafeobj Hashtbl Iflift Kernel List Ots Printf Signature Sort String Term
