(** Generation of the equational theory of an OTS (Section 2.3).

    Given an OTS description and the specification module of its data types,
    [generate] produces a module containing, for every action [a] and
    observer [o], the equation

    [o(a(S, Xs), Ys) = if c_a(S, Xs) then e_a(S, Xs, Ys) else o(S, Ys)]

    (the paper writes this as a [ceq] plus the implicit frame; we use the
    [if_then_else] form so that rewriting never needs to decide [c_a] before
    making progress — the boolean reasoning is deferred to the prover), the
    frame equations for untouched observers, the initial-state equations,
    the [if] simplification rules for every result sort involved, and the
    if-lifting rules for every operator visible in the data module. *)

open Kernel

(** [generate ~data ots] builds the protocol module, importing [data].
    @raise Invalid_argument if [Ots.check] fails. *)
val generate : data:Cafeobj.Spec.t -> Ots.t -> Cafeobj.Spec.t

(** [successor_equation ots action observer] is the generated equation for
    the pair, as [(lhs, rhs)] (exposed for tests). *)
val successor_equation :
  Ots.t -> Ots.action -> Ots.observer -> Term.t * Term.t
