(** Reporting of verification campaigns.

    The paper reports that 18 invariants were verified in about a week of
    human effort (Sections 1 and 7).  Our campaign report records, per
    invariant and per transition case, the prover outcome and its cost, and
    aggregates the totals that EXPERIMENTS.md compares against the paper. *)

type summary = {
  invariants_total : int;
  invariants_proved : int;
  cases_total : int;
  cases_proved : int;
  total_splits : int;
  total_rewrite_steps : int;
  total_time : float;  (** seconds *)
}

val summarize : Induction.result list -> summary

(** [pp_result ppf r] prints one invariant's per-case table. *)
val pp_result : Format.formatter -> Induction.result -> unit

(** [pp_summary ppf s] prints the campaign totals. *)
val pp_summary : Format.formatter -> summary -> unit

(** [pp_campaign ppf results] prints every result then the summary. *)
val pp_campaign : Format.formatter -> Induction.result list -> unit

(** [failures results] lists [(invariant, case, outcome)] for every case
    that did not come back [Proved]. *)
val failures :
  Induction.result list -> (string * string * Prover.outcome) list
