(** The proof-passage decision engine.

    A proof passage in the paper (Section 5.2) is checked by [red]-ucing a
    boolean term to [true] under the module's equations plus the passage's
    assumption equations.  The paper's author chooses the case analysis (the
    sub-case predicates) by hand; this module automates it:

    1. hypotheses and goal are normalized by the rewrite system and
       converted to boolean-ring polynomials ({!Kernel.Boolring}) — kept
       {e separate}, since multiplying them together squares the monomial
       count; a [true] goal polynomial closes the branch, a [false]
       hypothesis closes it vacuously, and a bounded algebraic entailment
       check (folding hypotheses into the goal as curried implications while
       the polynomials stay small) catches the cases CafeOBJ's [red]
       discharges outright;
    2. hypotheses that reduce to single literals are unit-propagated
       (DPLL-style); otherwise an undecided atom is selected and the state
       space is split on it, exactly like the paper's sub-cases 1–5 for
       [fakeSfin2]:

       - an {e equality} atom assumed true becomes a ground rewrite rule
         (congruence by substitution), preferring to expand an opaque fresh
         constant into the structured side;
       - a {e recognizer} atom [c?(m)] assumed true, when [m] is an opaque
         constant, instantiates [m := c(fresh…)] (no-junk property of free
         datatypes);
       - any other atom is assigned a truth value;

    3. contradictory branches (an assumption normalizing to the opposite
       boolean, or a constructor occurs-check failure) are vacuously true.

    A branch whose polynomial collapses to [false] is reported as a
    refutation candidate together with its assumption trail — this is how
    the counterexamples to properties 2′ and 3′ of Section 5.3 surface. *)

open Kernel

type config = {
  max_splits : int;  (** total split-node budget (default 100_000) *)
  max_depth : int;  (** split-tree depth bound (default 64) *)
}

val default_config : config

type stats = {
  splits : int;  (** split nodes explored *)
  max_depth_reached : int;
  rewrite_steps : int;  (** rule applications during this call *)
  vacuous : int;  (** branches closed by contradictory assumptions *)
}

type trail_entry = { atom : Term.t; value : bool }

type outcome =
  | Proved of stats
  | Refuted of { trail : trail_entry list; stats : stats }
      (** some consistent-looking branch evaluated to [false] *)
  | Unknown of { reason : string; residual : Term.t; stats : stats }
      (** budget exhausted, or residual atoms could not be split *)

type ctx = {
  system : Rewrite.system;  (** the protocol module's rewrite system *)
  fresh : Sort.t -> Term.t;
      (** fresh opaque constants for constructor expansion *)
  ctor_of_recognizer : Signature.op -> Signature.op option;
      (** maps a recognizer operator [c?] to its constructor [c] *)
}

(** [prove ?config ctx ~hyps ~goal] decides
    [(conj hyps) implies goal]. *)
val prove : ?config:config -> ctx -> hyps:Term.t list -> goal:Term.t -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_stats : outcome -> stats
