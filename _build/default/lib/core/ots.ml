open Kernel

type observer = {
  obs_op : Signature.op;
  obs_params : (string * Sort.t) list;
  obs_result : Sort.t;
}

type effect_ = {
  eff_observer : observer;
  eff_value : Term.t;
}

type action = {
  act_op : Signature.op;
  act_params : (string * Sort.t) list;
  act_cond : Term.t;
  act_effects : effect_ list;
}

type t = {
  ots_name : string;
  hidden : Sort.t;
  init : Signature.op;
  observers : observer list;
  actions : action list;
  init_equations : (Term.t * Term.t) list;
}

let state_var ots = Term.var "S" ots.hidden

let observer ots name =
  List.find (fun o -> String.equal o.obs_op.Signature.name name) ots.observers

let action ots name =
  List.find (fun a -> String.equal a.act_op.Signature.name name) ots.actions

let obs ots name args state =
  let o = observer ots name in
  Term.app o.obs_op (state :: args)

let apply ots name state args =
  let a = action ots name in
  Term.app a.act_op (state :: args)

let init_state ots = Term.const ots.init

let var_named vars (v : Term.var) =
  List.exists (fun (n, s) -> String.equal n v.v_name && Sort.equal s v.v_sort) vars

let check ots =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  (* Observer names unique. *)
  let names = List.map (fun o -> o.obs_op.Signature.name) ots.observers in
  let dup =
    List.find_opt (fun n -> List.length (List.filter (String.equal n) names) > 1) names
  in
  (match dup with
  | Some n -> fail "Ots.check %s: duplicate observer %s" ots.ots_name n
  | None -> ());
  (* Init constant profile. *)
  if ots.init.Signature.arity <> [] || not (Sort.equal ots.init.Signature.sort ots.hidden)
  then fail "Ots.check %s: init is not a constant of the hidden sort" ots.ots_name;
  (* Observers: first argument is the state. *)
  List.iter
    (fun o ->
      match o.obs_op.Signature.arity with
      | s :: rest
        when Sort.equal s ots.hidden
             && List.for_all2 Sort.equal rest (List.map snd o.obs_params)
             && List.length rest = List.length o.obs_params ->
        if not (Sort.equal o.obs_op.Signature.sort o.obs_result) then
          fail "Ots.check %s: observer %s result sort mismatch" ots.ots_name
            o.obs_op.Signature.name
      | _ ->
        fail "Ots.check %s: observer %s arity mismatch" ots.ots_name
          o.obs_op.Signature.name)
    ots.observers;
  (* Actions: profile and variable coverage. *)
  List.iter
    (fun a ->
      (match a.act_op.Signature.arity with
      | s :: rest
        when Sort.equal s ots.hidden
             && List.length rest = List.length a.act_params
             && List.for_all2 Sort.equal rest (List.map snd a.act_params) ->
        if not (Sort.equal a.act_op.Signature.sort ots.hidden) then
          fail "Ots.check %s: action %s does not return the hidden sort"
            ots.ots_name a.act_op.Signature.name
      | _ ->
        fail "Ots.check %s: action %s arity mismatch" ots.ots_name
          a.act_op.Signature.name);
      let allowed = ("S", ots.hidden) :: a.act_params in
      List.iter
        (fun v ->
          if not (var_named allowed v) then
            fail "Ots.check %s: action %s: free variable %s in condition"
              ots.ots_name a.act_op.Signature.name v.Term.v_name)
        (Term.vars a.act_cond);
      List.iter
        (fun e ->
          let allowed = allowed @ e.eff_observer.obs_params in
          List.iter
            (fun v ->
              if not (var_named allowed v) then
                fail "Ots.check %s: action %s: free variable %s in effect on %s"
                  ots.ots_name a.act_op.Signature.name v.Term.v_name
                  e.eff_observer.obs_op.Signature.name)
            (Term.vars e.eff_value);
          if not (Sort.equal (Term.sort e.eff_value) e.eff_observer.obs_result)
          then
            fail "Ots.check %s: action %s: effect on %s has wrong sort"
              ots.ots_name a.act_op.Signature.name
              e.eff_observer.obs_op.Signature.name)
        a.act_effects)
    ots.actions
