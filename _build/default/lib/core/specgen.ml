open Kernel

let obs_param_vars (o : Ots.observer) =
  List.map (fun (n, s) -> Term.var n s) o.obs_params

let act_param_vars (a : Ots.action) =
  List.map (fun (n, s) -> Term.var n s) a.act_params

let successor_equation ots (a : Ots.action) (o : Ots.observer) =
  let s = Ots.state_var ots in
  let xs = act_param_vars a in
  let ys = obs_param_vars o in
  let succ = Term.app a.Ots.act_op (s :: xs) in
  let lhs = Term.app o.Ots.obs_op (succ :: ys) in
  let framed = Term.app o.Ots.obs_op (s :: ys) in
  let rhs =
    match
      List.find_opt
        (fun (e : Ots.effect_) ->
          Signature.op_equal e.eff_observer.obs_op o.Ots.obs_op)
        a.Ots.act_effects
    with
    | None -> framed
    | Some e -> Term.ite a.Ots.act_cond e.eff_value framed
  in
  lhs, rhs

let generate ~data (ots : Ots.t) =
  Ots.check ots;
  let spec = Cafeobj.Spec.create ~imports:[ data ] (ots.Ots.ots_name ^ "-OTS") in
  ignore (Cafeobj.Spec.declare_hsort spec ots.Ots.hidden.Sort.name);
  (* Successor-state equations. *)
  List.iter
    (fun (a : Ots.action) ->
      List.iter
        (fun (o : Ots.observer) ->
          let lhs, rhs = successor_equation ots a o in
          let label =
            Printf.sprintf "trans-%s-%s" a.act_op.Signature.name
              o.obs_op.Signature.name
          in
          Cafeobj.Spec.add_eq spec ~label lhs rhs)
        ots.Ots.observers)
    ots.Ots.actions;
  (* Initial-state equations. *)
  List.iteri
    (fun i (lhs, rhs) ->
      Cafeobj.Spec.add_eq spec ~label:(Printf.sprintf "init-%d" i) lhs rhs)
    ots.Ots.init_equations;
  (* If simplification at every observer result sort and hidden sort. *)
  let sorts_seen = Hashtbl.create 16 in
  let add_if sort =
    if not (Hashtbl.mem sorts_seen sort.Sort.name) then begin
      Hashtbl.add sorts_seen sort.Sort.name ();
      Cafeobj.Builtins.add_if_rules spec sort
    end
  in
  List.iter (fun (o : Ots.observer) -> add_if o.obs_result) ots.Ots.observers;
  List.iter
    (fun (o : Signature.op) ->
      add_if o.Signature.sort;
      List.iter add_if o.Signature.arity)
    (Cafeobj.Spec.all_ops data);
  (* If-lifting through every data operator and through the equality
     operators of the sorts involved. *)
  let lift_seen = Hashtbl.create 64 in
  let add_lift (op : Signature.op) =
    if not (Hashtbl.mem lift_seen op.Signature.name) then begin
      Hashtbl.add lift_seen op.Signature.name ();
      List.iter (Cafeobj.Spec.add_rule spec) (Iflift.rules_for_op op)
    end
  in
  List.iter add_lift (Cafeobj.Spec.all_ops data);
  Hashtbl.iter
    (fun sort_name () ->
      if not (String.equal sort_name Sort.bool.Sort.name) then
        add_lift (Signature.Builtin.eq (Sort.find sort_name)))
    sorts_seen;
  spec
