(** Concrete protocol runs, executed with the rewriting engine.

    A scenario applies a sequence of transitions to the initial state and
    lets you observe the result — this is the paper's Figure 2 made
    executable.  Besides the honest full handshake and session
    resumption/duplication, the two counterexample runs of Section 5.3 are
    provided: the paper's malicious client [a'] is our [intruder].

    All scenarios share one set of concrete constants (two honest
    principals, random numbers, a session id, two cipher suites, secrets),
    declared as pairwise-distinct constructor constants so that every
    effective condition evaluates concretely. *)

open Kernel
open Core

(** The concrete constants of the scenarios. *)
type cast = {
  alice : Term.t;
  bob : Term.t;
  ra : Term.t;  (** Alice's full-handshake random *)
  rb : Term.t;  (** Bob's full-handshake random *)
  rc : Term.t;  (** Alice's resumption random *)
  rd : Term.t;  (** Bob's resumption random *)
  re : Term.t;  (** Alice's duplication random *)
  rf : Term.t;  (** Bob's duplication random *)
  ri : Term.t;  (** the intruder's random *)
  sid1 : Term.t;
  suite1 : Term.t;
  suite2 : Term.t;
  clist : Term.t;  (** [lcons(suite1, lcons(suite2, lnil))] *)
  sec1 : Term.t;
  sec2 : Term.t;
}

val cast : cast

(** One applied transition: the action (with arguments) and the state term
    after it. *)
type step = { label : string; state : Term.t }

type run = {
  run_name : string;
  ots : Ots.t;
  sys : Rewrite.system;
  steps : step list;  (** in execution order; last is the final state *)
}

(** [final run] is the last state term. *)
val final : run -> Term.t

(** [eval run t] normalizes [t] under the scenario's system. *)
val eval : run -> Term.t -> Term.t

(** [holds run t] is [true] iff the boolean term [t] normalizes to
    [true]. *)
val holds : run -> Term.t -> bool

(** [effective run] checks that every step actually fired: applying a
    transition whose effective condition is false leaves the state
    observationally unchanged (Section 2.2), which would make a scenario
    silently vacuous.  Returns the labels of non-effective steps (empty =
    all fired). *)
val effective : run -> string list

(** {1 The scenarios} *)

(** The six-message full handshake of Figure 2 between Alice and Bob,
    ending with both sides' [compl]/[sfin] session establishment. *)
val full_handshake : ?style:Model.style -> unit -> run

(** [full_handshake] followed by the four-message abbreviated handshake
    resuming the same session id. *)
val resumption : ?style:Model.style -> unit -> run

(** [resumption] followed by a second abbreviated handshake on the same
    session id — the paper's "duplication" of a current session. *)
val duplication : unit -> run

(** The Section 5.3 counterexample to property 2′: Bob accepts a
    ClientFinished that seems to come from Alice but originates from the
    intruder.  The final state contains
    [cf(intruder, alice, bob, …)] and Bob's [sfin] fires. *)
val attack_2prime : unit -> run

(** The Section 5.3 counterexample to property 3′: the hijacked session is
    then resumed; Bob accepts a ClientFinished2 seemingly from Alice. *)
val attack_3prime : unit -> run

(** {1 Message terms of the honest run (for assertions and docs)} *)

type honest_messages = {
  ch_msg : Term.t;
  sh_msg : Term.t;
  ct_msg : Term.t;
  kx_msg : Term.t;
  cf_msg : Term.t;
  sf_msg : Term.t;
  ch2_msg : Term.t;
  sh2_msg : Term.t;
  sf2_msg : Term.t;
  cf2_msg : Term.t;
}

val honest_messages : honest_messages
