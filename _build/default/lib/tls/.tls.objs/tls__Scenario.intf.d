lib/tls/scenario.mli: Core Kernel Model Ots Rewrite Term
