lib/tls/concrete.mli: Format Kernel Mc Model Term
