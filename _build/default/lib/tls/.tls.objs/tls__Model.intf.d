lib/tls/model.mli: Cafeobj Core Kernel Ots Sort Term
