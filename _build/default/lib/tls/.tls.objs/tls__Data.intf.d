lib/tls/data.mli: Cafeobj Kernel Sort Term
