lib/tls/concrete.ml: Buffer Data Dolevyao Format Kernel List Mc Model Printf Scenario Signature String Term
