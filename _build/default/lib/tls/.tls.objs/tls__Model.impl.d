lib/tls/model.ml: Core Data Induction Kernel Lazy List Ots Signature Sort Specgen Term
