lib/tls/data.ml: Cafeobj Kernel List Option Printf Signature Sort Term
