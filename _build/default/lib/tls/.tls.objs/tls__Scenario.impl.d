lib/tls/scenario.ml: Cafeobj Core Data Kernel List Model Ots Rewrite Signature Subst Term
