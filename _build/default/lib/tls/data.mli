(** Data universe of the abstract TLS handshake protocol (Section 4.2).

    Declares the visible sorts, their free constructors with projections, the
    ten message constructors with recognizers, the network (a monotone
    collection of messages), the used-value sets, and the intruder's gleaning
    collections (Section 4.3) as membership predicates.

    Deviations from the paper's presentation, recorded in DESIGN.md:
    - the paper's overloaded [k] is split into [pk] (public keys) and [hkey]
      (the hash used as a symmetric key);
    - the collections [cpms], [csig], … of sort [ColX] are represented by
      membership predicates [X \in cX(nw)] fused into single operators
      [in-cpms : X Network -> Bool] etc.; the paper only ever uses the
      collections through membership, so the theories are isomorphic;
    - the network is a monotone cons-list rather than a bag: the paper's
      proofs only use membership (never bag equality), and list membership
      modulo the generated equations coincides with bag membership.

    All constructors are free: the perfect-cryptography assumption makes two
    hashes/ciphertexts equal exactly when their arguments are. *)

open Kernel

(** The specification module holding every declaration below. *)
val spec : Cafeobj.Spec.t

(** {1 Sorts} *)

val prin : Sort.t
val rand : Sort.t
val choice : Sort.t
val sid : Sort.t
val list_of_choices : Sort.t
val secret : Sort.t
val pms : Sort.t
val pub_key : Sort.t
val sig_ : Sort.t
val cert_s : Sort.t
val key : Sort.t
val cfinish : Sort.t
val sfinish : Sort.t
val cfinish2 : Sort.t
val sfinish2 : Sort.t
val enc_pms : Sort.t
val enc_cfin : Sort.t
val enc_sfin : Sort.t
val enc_cfin2 : Sort.t
val enc_sfin2 : Sort.t
val session : Sort.t
val msg : Sort.t
val network : Sort.t
val urand : Sort.t
val usid : Sort.t
val usecret : Sort.t

(** {1 Principals} *)

(** The two distinguished principals (free constants; [intruder <> ca] is a
    consequence of the no-confusion theory). *)
val intruder : Term.t

val ca : Term.t

(** {1 Term builders}

    Thin typed wrappers over the constructors; argument order follows the
    paper's notation. *)

val pms_ : client:Term.t -> server:Term.t -> Term.t -> Term.t
val pk_ : Term.t -> Term.t
val sig_of : signer:Term.t -> subject:Term.t -> Term.t -> Term.t
val cert_of : Term.t -> Term.t -> Term.t -> Term.t
val hkey_ : Term.t -> Term.t -> Term.t -> Term.t -> Term.t

(** [cfin_ [a; b; i; l; c; r1; r2; pms]] — argument order as in the paper. *)
val cfin_ : Term.t list -> Term.t

(** [sfin_ [a; b; i; l; c; r1; r2; pms]] *)
val sfin_ : Term.t list -> Term.t

(** [cfin2_ [a; b; i; c; r1; r2; pms]] *)
val cfin2_ : Term.t list -> Term.t

(** [sfin2_ [a; b; i; c; r1; r2; pms]] *)
val sfin2_ : Term.t list -> Term.t

val epms_ : Term.t -> Term.t -> Term.t
val ecfin_ : Term.t -> Term.t -> Term.t
val esfin_ : Term.t -> Term.t -> Term.t
val ecfin2_ : Term.t -> Term.t -> Term.t
val esfin2_ : Term.t -> Term.t -> Term.t
val st_ : Term.t -> Term.t -> Term.t -> Term.t -> Term.t
val no_session : Term.t

(** {1 Messages}

    Every message starts with creator (meta-information), seeming sender and
    receiver (Section 4.2). *)

val ch_ : crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t -> Term.t
(** [ch_ ~crt ~src ~dst rand list] *)

val sh_ :
  crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t -> Term.t -> Term.t
(** [sh_ ~crt ~src ~dst rand sid choice] *)

val ct_ : crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t
val kx_ : crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t
val cf_ : crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t
val sf_ : crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t

val ch2_ :
  crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t -> Term.t
(** [ch2_ ~crt ~src ~dst rand sid] *)

val sh2_ :
  crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t -> Term.t -> Term.t
(** [sh2_ ~crt ~src ~dst rand sid choice] *)

val cf2_ : crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t
val sf2_ : crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t

(** {1 Projections and recognizers} *)

val crt : Term.t -> Term.t
val src : Term.t -> Term.t
val dst : Term.t -> Term.t
val msg_rand : Term.t -> Term.t
val msg_list : Term.t -> Term.t
val msg_sid : Term.t -> Term.t
val msg_choice : Term.t -> Term.t
val msg_cert : Term.t -> Term.t
val msg_epms : Term.t -> Term.t
val msg_ecfin : Term.t -> Term.t
val msg_esfin : Term.t -> Term.t
val msg_ecfin2 : Term.t -> Term.t
val msg_esfin2 : Term.t -> Term.t

(** [is_ch m] is the recognizer atom [ch?(m)], etc. *)
val is_ch : Term.t -> Term.t

val is_sh : Term.t -> Term.t
val is_ct : Term.t -> Term.t
val is_kx : Term.t -> Term.t
val is_cf : Term.t -> Term.t
val is_sf : Term.t -> Term.t
val is_ch2 : Term.t -> Term.t
val is_sh2 : Term.t -> Term.t
val is_cf2 : Term.t -> Term.t
val is_sf2 : Term.t -> Term.t

val pms_client : Term.t -> Term.t
val pms_server : Term.t -> Term.t
val pms_secret : Term.t -> Term.t
val pk_owner : Term.t -> Term.t
val sig_signer : Term.t -> Term.t
val sig_subject : Term.t -> Term.t
val sig_key : Term.t -> Term.t
val cert_prin : Term.t -> Term.t
val cert_key : Term.t -> Term.t
val cert_sig : Term.t -> Term.t
val epms_key : Term.t -> Term.t
val epms_pms : Term.t -> Term.t
val ecfin_key : Term.t -> Term.t
val ecfin_body : Term.t -> Term.t
val esfin_key : Term.t -> Term.t
val esfin_body : Term.t -> Term.t
val ecfin2_key : Term.t -> Term.t
val ecfin2_body : Term.t -> Term.t
val esfin2_key : Term.t -> Term.t
val esfin2_body : Term.t -> Term.t
val hkey_prin : Term.t -> Term.t
val hkey_pms : Term.t -> Term.t
val hkey_rand1 : Term.t -> Term.t
val hkey_rand2 : Term.t -> Term.t
val st_choice : Term.t -> Term.t
val st_rand1 : Term.t -> Term.t
val st_rand2 : Term.t -> Term.t
val st_pms : Term.t -> Term.t

(** {1 The network and the used-value sets} *)

(** [empty_network] is the paper's [void]. *)
val empty_network : Term.t

(** [net_add m nw] is the paper's [m , nw]. *)
val net_add : Term.t -> Term.t -> Term.t

(** [msg_in m nw] is the membership predicate [m \in nw]. *)
val msg_in : Term.t -> Term.t -> Term.t

val empty_urand : Term.t
val ur_add : Term.t -> Term.t -> Term.t
val rand_in : Term.t -> Term.t -> Term.t
val empty_usid : Term.t
val ui_add : Term.t -> Term.t -> Term.t
val sid_in : Term.t -> Term.t -> Term.t
val empty_usecret : Term.t
val us_add : Term.t -> Term.t -> Term.t
val secret_in : Term.t -> Term.t -> Term.t

(** [choice_in c l] is list-of-choices membership.  Lists are real cons
    lists ({!lnil}/{!lcons}) so that concrete executions can evaluate the
    check; symbolic proofs keep lists opaque and split on the atom. *)
val choice_in : Term.t -> Term.t -> Term.t

val lnil : Term.t
val lcons : Term.t -> Term.t -> Term.t

(** [list_of cs] builds the list of cipher suites [cs]. *)
val list_of : Term.t list -> Term.t

(** {1 Gleaning collections (Section 4.3)}

    The seven collections of quantities the intruder extracts from the
    network, as membership predicates over the network term. *)

val in_cpms : Term.t -> Term.t -> Term.t
val in_csig : Term.t -> Term.t -> Term.t
val in_cepms : Term.t -> Term.t -> Term.t
val in_cecfin : Term.t -> Term.t -> Term.t
val in_cesfin : Term.t -> Term.t -> Term.t
val in_cecfin2 : Term.t -> Term.t -> Term.t
val in_cesfin2 : Term.t -> Term.t -> Term.t
