open Kernel
open Core
module D = Data

type style = Original | Cf2First

let protocol_sort = Sort.hidden "Protocol"

(* ------------------------------------------------------------------ *)
(* One transition system instance *)

let make style =
  let sg = Signature.create () in
  let proto = protocol_sort in
  let decl name arity sort = Signature.declare sg name arity sort ~attrs:[] in
  (* Observers. *)
  let nw_op = decl "nw" [ proto ] D.network in
  let ss_op = decl "ss" [ proto; D.prin; D.prin; D.sid ] D.session in
  let ur_op = decl "ur" [ proto ] D.urand in
  let ui_op = decl "ui" [ proto ] D.usid in
  let us_op = decl "us" [ proto ] D.usecret in
  let init_op = decl "tls-init" [] proto in
  let nw_obs : Ots.observer =
    { obs_op = nw_op; obs_params = []; obs_result = D.network }
  in
  let ss_obs : Ots.observer =
    {
      obs_op = ss_op;
      obs_params = [ "OP1", D.prin; "OP2", D.prin; "OI", D.sid ];
      obs_result = D.session;
    }
  in
  let ur_obs : Ots.observer =
    { obs_op = ur_op; obs_params = []; obs_result = D.urand }
  in
  let ui_obs : Ots.observer =
    { obs_op = ui_op; obs_params = []; obs_result = D.usid }
  in
  let us_obs : Ots.observer =
    { obs_op = us_op; obs_params = []; obs_result = D.usecret }
  in
  let sv = Term.var "S" proto in
  let nw_ = Term.app nw_op [ sv ] in
  let ur_ = Term.app ur_op [ sv ] in
  let ui_ = Term.app ui_op [ sv ] in
  let us_ = Term.app us_op [ sv ] in
  let ss_ owner peer i = Term.app ss_op [ sv; owner; peer; i ] in
  let op1 = Term.var "OP1" D.prin in
  let op2 = Term.var "OP2" D.prin in
  let oi = Term.var "OI" D.sid in

  (* Effect helpers. *)
  let send m : Ots.effect_ =
    { eff_observer = nw_obs; eff_value = D.net_add m nw_ }
  in
  let use_rand r : Ots.effect_ =
    { eff_observer = ur_obs; eff_value = D.ur_add r ur_ }
  in
  let use_sid i : Ots.effect_ =
    { eff_observer = ui_obs; eff_value = D.ui_add i ui_ }
  in
  let use_secret x : Ots.effect_ =
    { eff_observer = us_obs; eff_value = D.us_add x us_ }
  in
  let set_session ~owner ~peer ~sid value : Ots.effect_ =
    {
      eff_observer = ss_obs;
      eff_value =
        Term.ite
          (Term.conj [ Term.eq op1 owner; Term.eq op2 peer; Term.eq oi sid ])
          value
          (Term.app ss_op [ sv; op1; op2; oi ]);
    }
  in
  let actions = ref [] in
  let act name params cond effects =
    let op = decl name (proto :: List.map snd params) proto in
    let a : Ots.action =
      { act_op = op; act_params = params; act_cond = cond; act_effects = effects }
    in
    actions := a :: !actions
  in
  (* Common variables. *)
  let a = Term.var "A" D.prin in
  let b = Term.var "B" D.prin in
  let r = Term.var "R" D.rand in
  let r1 = Term.var "R1" D.rand in
  let r2 = Term.var "R2" D.rand in
  let i = Term.var "I" D.sid in
  let c = Term.var "C" D.choice in
  let l = Term.var "L" D.list_of_choices in
  let se = Term.var "SE" D.secret in
  let m1 = Term.var "M1" D.msg in
  let m2 = Term.var "M2" D.msg in
  let m3 = Term.var "M3" D.msg in
  let m4 = Term.var "M4" D.msg in
  let m5 = Term.var "M5" D.msg in
  let e_pms = Term.var "E" D.enc_pms in
  let e_cf = Term.var "E" D.enc_cfin in
  let e_sf = Term.var "E" D.enc_sfin in
  let e_cf2 = Term.var "E" D.enc_cfin2 in
  let e_sf2 = Term.var "E" D.enc_sfin2 in
  let k = Term.var "K" D.pub_key in
  let p = Term.var "P" D.pms in
  let g = Term.var "G" D.sig_ in
  let in_nw m = D.msg_in m nw_ in
  let fresh_rand x = Term.not_ (D.rand_in x ur_) in
  let fresh_sid x = Term.not_ (D.sid_in x ui_) in
  let fresh_secret x = Term.not_ (D.secret_in x us_) in
  let own m who = Term.and_ (Term.eq (D.crt m) who) (Term.eq (D.src m) who) in

  (* ---------------- Trustable principals (Section 4.4) ---------------- *)

  (* A client initiates a handshake with a fresh random number. *)
  act "chello"
    [ "A", D.prin; "B", D.prin; "R", D.rand; "L", D.list_of_choices ]
    (fresh_rand r)
    [ send (D.ch_ ~crt:a ~src:a ~dst:b r l); use_rand r ];

  (* The server answers a ClientHello with fresh random number and session
     id, picking a suite from the offered list. *)
  act "shello"
    [ "B", D.prin; "R", D.rand; "I", D.sid; "C", D.choice; "M1", D.msg ]
    (Term.conj
       [
         in_nw m1;
         D.is_ch m1;
         Term.eq (D.dst m1) b;
         fresh_rand r;
         fresh_sid i;
         D.choice_in c (D.msg_list m1);
       ])
    [ send (D.sh_ ~crt:b ~src:b ~dst:(D.src m1) r i c); use_rand r; use_sid i ];

  (* The server sends its certificate (conditions follow the paper's
     [c-cert] verbatim). *)
  act "cert"
    [ "B", D.prin; "M1", D.msg; "M2", D.msg ]
    (Term.conj
       [
         in_nw m1;
         in_nw m2;
         D.is_ch m1;
         D.is_sh m2;
         Term.eq (D.dst m1) b;
         own m2 b;
         Term.eq (D.src m1) (D.dst m2);
         D.choice_in (D.msg_choice m2) (D.msg_list m1);
       ])
    [
      send
        (D.ct_ ~crt:b ~src:b ~dst:(D.dst m2)
           (D.cert_of b (D.pk_ b) (D.sig_of ~signer:D.ca ~subject:b (D.pk_ b))));
    ];

  (* The client checks the certificate against the only trusted CA and
     sends the encrypted pre-master secret. *)
  let m3cert = D.msg_cert m3 in
  act "kexch"
    [ "A", D.prin; "SE", D.secret; "M1", D.msg; "M2", D.msg; "M3", D.msg ]
    (Term.conj
       [
         in_nw m1;
         in_nw m2;
         in_nw m3;
         D.is_ch m1;
         own m1 a;
         D.is_sh m2;
         Term.eq (D.dst m2) a;
         Term.eq (D.src m2) (D.dst m1);
         D.is_ct m3;
         Term.eq (D.dst m3) a;
         Term.eq (D.src m3) (D.src m2);
         Term.eq (D.cert_prin m3cert) (D.src m2);
         Term.eq (D.cert_sig m3cert)
           (D.sig_of ~signer:D.ca ~subject:(D.src m2) (D.cert_key m3cert));
         fresh_secret se;
       ])
    [
      send
        (D.kx_ ~crt:a ~src:a ~dst:(D.src m2)
           (D.epms_ (D.cert_key m3cert)
              (D.pms_ ~client:a ~server:(D.src m2) se)));
      use_secret se;
    ];

  (* The client's Finished message, keyed by ClientKey = hash(A, pms, randA,
     randB). *)
  let cfin_pms = D.pms_ ~client:a ~server:(D.src m2) se in
  act "cfin"
    [ "A", D.prin; "SE", D.secret; "M1", D.msg; "M2", D.msg; "M3", D.msg ]
    (Term.conj
       [
         in_nw m1;
         in_nw m2;
         in_nw m3;
         D.is_ch m1;
         own m1 a;
         D.is_sh m2;
         Term.eq (D.dst m2) a;
         Term.eq (D.src m2) (D.dst m1);
         D.is_kx m3;
         own m3 a;
         Term.eq (D.dst m3) (D.src m2);
         Term.eq (D.epms_pms (D.msg_epms m3)) cfin_pms;
       ])
    [
      send
        (D.cf_ ~crt:a ~src:a ~dst:(D.src m2)
           (D.ecfin_
              (D.hkey_ a cfin_pms (D.msg_rand m1) (D.msg_rand m2))
              (D.cfin_
                 [
                   a;
                   D.src m2;
                   D.msg_sid m2;
                   D.msg_list m1;
                   D.msg_choice m2;
                   D.msg_rand m1;
                   D.msg_rand m2;
                   cfin_pms;
                 ])));
    ];

  (* The server decrypts the pre-master secret, checks the client Finished
     and answers with its own, establishing the session (for resumption).
     The own-certificate conjunct is the network-as-memory check that the
     server completed its half of the exchange (Section 4.3). *)
  let sfin_pms = D.epms_pms (D.msg_epms m4) in
  act "sfin"
    [
      "B", D.prin; "M1", D.msg; "M2", D.msg; "M3", D.msg; "M4", D.msg;
      "M5", D.msg;
    ]
    (Term.conj
       [
         in_nw m1;
         in_nw m2;
         in_nw m3;
         in_nw m4;
         in_nw m5;
         D.is_ch m1;
         Term.eq (D.dst m1) b;
         D.is_sh m2;
         own m2 b;
         Term.eq (D.dst m2) (D.src m1);
         D.is_ct m3;
         own m3 b;
         Term.eq (D.dst m3) (D.dst m2);
         Term.eq (D.msg_cert m3)
           (D.cert_of b (D.pk_ b) (D.sig_of ~signer:D.ca ~subject:b (D.pk_ b)));
         D.is_kx m4;
         Term.eq (D.dst m4) b;
         Term.eq (D.epms_key (D.msg_epms m4)) (D.pk_ b);
         D.is_cf m5;
         Term.eq (D.dst m5) b;
         Term.eq (D.msg_ecfin m5)
           (D.ecfin_
              (D.hkey_ (D.dst m2) sfin_pms (D.msg_rand m1) (D.msg_rand m2))
              (D.cfin_
                 [
                   D.dst m2;
                   b;
                   D.msg_sid m2;
                   D.msg_list m1;
                   D.msg_choice m2;
                   D.msg_rand m1;
                   D.msg_rand m2;
                   sfin_pms;
                 ]));
       ])
    [
      send
        (D.sf_ ~crt:b ~src:b ~dst:(D.dst m2)
           (D.esfin_
              (D.hkey_ b sfin_pms (D.msg_rand m1) (D.msg_rand m2))
              (D.sfin_
                 [
                   D.dst m2;
                   b;
                   D.msg_sid m2;
                   D.msg_list m1;
                   D.msg_choice m2;
                   D.msg_rand m1;
                   D.msg_rand m2;
                   sfin_pms;
                 ])));
      set_session ~owner:b ~peer:(D.dst m2) ~sid:(D.msg_sid m2)
        (D.st_ (D.msg_choice m2) (D.msg_rand m1) (D.msg_rand m2) sfin_pms);
    ];

  (* The client checks the server Finished; on success the handshake is
     complete and the client records the session. *)
  let compl_pms = D.pms_ ~client:a ~server:(D.src m2) se in
  act "compl"
    [
      "A", D.prin; "SE", D.secret; "M1", D.msg; "M2", D.msg; "M3", D.msg;
      "M4", D.msg;
    ]
    (Term.conj
       [
         in_nw m1;
         in_nw m2;
         in_nw m3;
         in_nw m4;
         D.is_ch m1;
         own m1 a;
         D.is_sh m2;
         Term.eq (D.dst m2) a;
         Term.eq (D.src m2) (D.dst m1);
         D.is_kx m3;
         own m3 a;
         Term.eq (D.dst m3) (D.src m2);
         Term.eq (D.epms_pms (D.msg_epms m3)) compl_pms;
         D.is_sf m4;
         Term.eq (D.dst m4) a;
         Term.eq (D.src m4) (D.src m2);
         Term.eq (D.msg_esfin m4)
           (D.esfin_
              (D.hkey_ (D.src m2) compl_pms (D.msg_rand m1) (D.msg_rand m2))
              (D.sfin_
                 [
                   a;
                   D.src m2;
                   D.msg_sid m2;
                   D.msg_list m1;
                   D.msg_choice m2;
                   D.msg_rand m1;
                   D.msg_rand m2;
                   compl_pms;
                 ]));
       ])
    [
      set_session ~owner:a ~peer:(D.src m2) ~sid:(D.msg_sid m2)
        (D.st_ (D.msg_choice m2) (D.msg_rand m1) (D.msg_rand m2) compl_pms);
    ];

  (* ---------------- Abbreviated handshake ---------------- *)

  (* The client asks to resume the session identified by I. *)
  act "chello2"
    [ "A", D.prin; "B", D.prin; "R", D.rand; "I", D.sid ]
    (Term.conj
       [ Term.not_ (Term.eq (ss_ a b i) D.no_session); fresh_rand r ])
    [ send (D.ch2_ ~crt:a ~src:a ~dst:b r i); use_rand r ];

  (* The willing server replies with a fresh random number and the session's
     cipher suite. *)
  let sh2_sess = ss_ b (D.src m1) (D.msg_sid m1) in
  act "shello2"
    [ "B", D.prin; "R", D.rand; "M1", D.msg ]
    (Term.conj
       [
         in_nw m1;
         D.is_ch2 m1;
         Term.eq (D.dst m1) b;
         Term.not_ (Term.eq sh2_sess D.no_session);
         fresh_rand r;
       ])
    [
      send
        (D.sh2_ ~crt:b ~src:b ~dst:(D.src m1) r (D.msg_sid m1)
           (D.st_choice sh2_sess));
      use_rand r;
    ];

  (* Finished2 messages.  In the [Original] style (Figure 2) the server's
     Finished2 comes first and the client answers; in the [Cf2First] variant
     (Section 5.3) the order is swapped. *)
  let sess_bs = ss_ b (D.src m1) (D.msg_sid m1) in
  let sf2_body dst_client server sess chosen rA rB =
    (* The Finished2 hash covers the cipher suite the server announced in
       its ServerHello2 (identical to the session's suite in any reachable
       state). *)
    D.esfin2_
      (D.hkey_ server (D.st_pms sess) rA rB)
      (D.sfin2_
         [ dst_client; server; D.msg_sid m1; chosen; rA; rB; D.st_pms sess ])
  in
  let cf2_body client server sess rA rB chosen =
    D.ecfin2_
      (D.hkey_ client (D.st_pms sess) rA rB)
      (D.cfin2_ [ client; server; D.msg_sid m1; chosen; rA; rB; D.st_pms sess ])
  in
  let ch2_sh2_pair ~server =
    (* M1 is the ch2 addressed to [server], M2 is [server]'s own sh2 reply. *)
    [
      in_nw m1;
      in_nw m2;
      D.is_ch2 m1;
      Term.eq (D.dst m1) server;
      D.is_sh2 m2;
      own m2 server;
      Term.eq (D.dst m2) (D.src m1);
      Term.eq (D.msg_sid m2) (D.msg_sid m1);
    ]
  in
  let client_ch2_sh2 =
    (* M1 is A's own ch2, M2 the sh2 answer from the contacted server. *)
    [
      in_nw m1;
      in_nw m2;
      D.is_ch2 m1;
      own m1 a;
      D.is_sh2 m2;
      Term.eq (D.dst m2) a;
      Term.eq (D.src m2) (D.dst m1);
      Term.eq (D.msg_sid m2) (D.msg_sid m1);
    ]
  in
  let sess_a = ss_ a (D.src m2) (D.msg_sid m1) in
  (match style with
  | Original ->
    (* Server sends ServerFinished2 right after its ServerHello2. *)
    act "sfin2"
      [ "B", D.prin; "M1", D.msg; "M2", D.msg ]
      (Term.conj
         (ch2_sh2_pair ~server:b
         @ [ Term.not_ (Term.eq sess_bs D.no_session) ]))
      [
        send
          (D.sf2_ ~crt:b ~src:b ~dst:(D.src m1)
             (sf2_body (D.src m1) b sess_bs (D.msg_choice m2) (D.msg_rand m1)
                (D.msg_rand m2)));
      ];
    (* Client checks it and answers with ClientFinished2, refreshing its
       session parameters. *)
    act "cfin2"
      [ "A", D.prin; "M1", D.msg; "M2", D.msg; "M3", D.msg ]
      (Term.conj
         (client_ch2_sh2
         @ [
             in_nw m3;
             D.is_sf2 m3;
             Term.eq (D.dst m3) a;
             Term.eq (D.src m3) (D.src m2);
             Term.not_ (Term.eq sess_a D.no_session);
             Term.eq (D.msg_esfin2 m3)
               (D.esfin2_
                  (D.hkey_ (D.src m2) (D.st_pms sess_a) (D.msg_rand m1)
                     (D.msg_rand m2))
                  (D.sfin2_
                     [
                       a;
                       D.src m2;
                       D.msg_sid m1;
                       D.msg_choice m2;
                       D.msg_rand m1;
                       D.msg_rand m2;
                       D.st_pms sess_a;
                     ]));
           ]))
      [
        send
          (D.cf2_ ~crt:a ~src:a ~dst:(D.src m2)
             (cf2_body a (D.src m2) sess_a (D.msg_rand m1) (D.msg_rand m2)
                (D.msg_choice m2)));
        set_session ~owner:a ~peer:(D.src m2) ~sid:(D.msg_sid m1)
          (D.st_ (D.msg_choice m2) (D.msg_rand m1) (D.msg_rand m2)
             (D.st_pms sess_a));
      ];
    (* Server checks the ClientFinished2; resumption complete. *)
    act "compl2"
      [ "B", D.prin; "M1", D.msg; "M2", D.msg; "M3", D.msg ]
      (Term.conj
         (ch2_sh2_pair ~server:b
         @ [
             in_nw m3;
             D.is_cf2 m3;
             Term.eq (D.dst m3) b;
             Term.not_ (Term.eq sess_bs D.no_session);
             Term.eq (D.msg_ecfin2 m3)
               (cf2_body (D.src m1) b sess_bs (D.msg_rand m1) (D.msg_rand m2)
                  (D.msg_choice m2));
           ]))
      [
        set_session ~owner:b ~peer:(D.src m1) ~sid:(D.msg_sid m1)
          (D.st_ (D.msg_choice m2) (D.msg_rand m1) (D.msg_rand m2)
             (D.st_pms sess_bs));
      ]
  | Cf2First ->
    (* Variant: the client's Finished2 comes first. *)
    act "cfin2"
      [ "A", D.prin; "M1", D.msg; "M2", D.msg ]
      (Term.conj
         (client_ch2_sh2 @ [ Term.not_ (Term.eq sess_a D.no_session) ]))
      [
        send
          (D.cf2_ ~crt:a ~src:a ~dst:(D.src m2)
             (cf2_body a (D.src m2) sess_a (D.msg_rand m1) (D.msg_rand m2)
                (D.msg_choice m2)));
      ];
    act "sfin2"
      [ "B", D.prin; "M1", D.msg; "M2", D.msg; "M3", D.msg ]
      (Term.conj
         (ch2_sh2_pair ~server:b
         @ [
             in_nw m3;
             D.is_cf2 m3;
             Term.eq (D.dst m3) b;
             Term.not_ (Term.eq sess_bs D.no_session);
             Term.eq (D.msg_ecfin2 m3)
               (cf2_body (D.src m1) b sess_bs (D.msg_rand m1) (D.msg_rand m2)
                  (D.msg_choice m2));
           ]))
      [
        send
          (D.sf2_ ~crt:b ~src:b ~dst:(D.src m1)
             (sf2_body (D.src m1) b sess_bs (D.msg_choice m2) (D.msg_rand m1)
                (D.msg_rand m2)));
        set_session ~owner:b ~peer:(D.src m1) ~sid:(D.msg_sid m1)
          (D.st_ (D.msg_choice m2) (D.msg_rand m1) (D.msg_rand m2)
             (D.st_pms sess_bs));
      ];
    act "compl2"
      [ "A", D.prin; "M1", D.msg; "M2", D.msg; "M3", D.msg ]
      (Term.conj
         (client_ch2_sh2
         @ [
             in_nw m3;
             D.is_sf2 m3;
             Term.eq (D.dst m3) a;
             Term.eq (D.src m3) (D.src m2);
             Term.not_ (Term.eq sess_a D.no_session);
             Term.eq (D.msg_esfin2 m3)
               (D.esfin2_
                  (D.hkey_ (D.src m2) (D.st_pms sess_a) (D.msg_rand m1)
                     (D.msg_rand m2))
                  (D.sfin2_
                     [
                       a;
                       D.src m2;
                       D.msg_sid m1;
                       D.msg_choice m2;
                       D.msg_rand m1;
                       D.msg_rand m2;
                       D.st_pms sess_a;
                     ]));
           ]))
      [
        set_session ~owner:a ~peer:(D.src m2) ~sid:(D.msg_sid m1)
          (D.st_ (D.msg_choice m2) (D.msg_rand m1) (D.msg_rand m2)
             (D.st_pms sess_a));
      ]);

  (* ---------------- The intruder (Section 4.5) ---------------- *)

  (* Clear messages: every quantity is guessable, no condition. *)
  act "fakeCh"
    [ "A", D.prin; "B", D.prin; "R", D.rand; "L", D.list_of_choices ]
    Term.tt
    [ send (D.ch_ ~crt:D.intruder ~src:a ~dst:b r l) ];
  act "fakeSh"
    [ "B", D.prin; "A", D.prin; "R", D.rand; "I", D.sid; "C", D.choice ]
    Term.tt
    [ send (D.sh_ ~crt:D.intruder ~src:b ~dst:a r i c) ];
  act "fakeCh2"
    [ "A", D.prin; "B", D.prin; "R", D.rand; "I", D.sid ]
    Term.tt
    [ send (D.ch2_ ~crt:D.intruder ~src:a ~dst:b r i) ];
  act "fakeSh2"
    [ "B", D.prin; "A", D.prin; "R", D.rand; "I", D.sid; "C", D.choice ]
    Term.tt
    [ send (D.sh2_ ~crt:D.intruder ~src:b ~dst:a r i c) ];

  (* Certificates: any principal and guessable key, but the signature must
     have been gleaned. *)
  act "fakeCt"
    [ "B", D.prin; "A", D.prin; "P2", D.prin; "K", D.pub_key; "G", D.sig_ ]
    (D.in_csig g nw_)
    [
      send
        (D.ct_ ~crt:D.intruder ~src:b ~dst:a
           (D.cert_of (Term.var "P2" D.prin) k g));
    ];

  (* Ciphertext-carrying messages: replay a gleaned ciphertext... *)
  act "fakeKx1"
    [ "A", D.prin; "B", D.prin; "E", D.enc_pms ]
    (D.in_cepms e_pms nw_)
    [ send (D.kx_ ~crt:D.intruder ~src:a ~dst:b e_pms) ];
  act "fakeCf1"
    [ "A", D.prin; "B", D.prin; "E", D.enc_cfin ]
    (D.in_cecfin e_cf nw_)
    [ send (D.cf_ ~crt:D.intruder ~src:a ~dst:b e_cf) ];
  act "fakeSf1"
    [ "B", D.prin; "A", D.prin; "E", D.enc_sfin ]
    (D.in_cesfin e_sf nw_)
    [ send (D.sf_ ~crt:D.intruder ~src:b ~dst:a e_sf) ];
  act "fakeCf21"
    [ "A", D.prin; "B", D.prin; "E", D.enc_cfin2 ]
    (D.in_cecfin2 e_cf2 nw_)
    [ send (D.cf2_ ~crt:D.intruder ~src:a ~dst:b e_cf2) ];
  act "fakeSf21"
    [ "B", D.prin; "A", D.prin; "E", D.enc_sfin2 ]
    (D.in_cesfin2 e_sf2 nw_)
    [ send (D.sf2_ ~crt:D.intruder ~src:b ~dst:a e_sf2) ];

  (* ... or construct one from a known pre-master secret (the symmetric keys
     are hashes of known quantities, Section 4.3). *)
  act "fakeKx2"
    [ "A", D.prin; "B", D.prin; "K", D.pub_key; "P", D.pms ]
    (D.in_cpms p nw_)
    [ send (D.kx_ ~crt:D.intruder ~src:a ~dst:b (D.epms_ k p)) ];
  act "fakeCf2"
    [
      "A", D.prin; "B", D.prin; "I", D.sid; "L", D.list_of_choices;
      "C", D.choice; "R1", D.rand; "R2", D.rand; "P", D.pms;
    ]
    (D.in_cpms p nw_)
    [
      send
        (D.cf_ ~crt:D.intruder ~src:a ~dst:b
           (D.ecfin_ (D.hkey_ a p r1 r2) (D.cfin_ [ a; b; i; l; c; r1; r2; p ])));
    ];
  act "fakeSf2"
    [
      "B", D.prin; "A", D.prin; "I", D.sid; "L", D.list_of_choices;
      "C", D.choice; "R1", D.rand; "R2", D.rand; "P", D.pms;
    ]
    (D.in_cpms p nw_)
    [
      send
        (D.sf_ ~crt:D.intruder ~src:b ~dst:a
           (D.esfin_ (D.hkey_ b p r1 r2) (D.sfin_ [ a; b; i; l; c; r1; r2; p ])));
    ];
  act "fakeCf22"
    [
      "A", D.prin; "B", D.prin; "I", D.sid; "C", D.choice; "R1", D.rand;
      "R2", D.rand; "P", D.pms;
    ]
    (D.in_cpms p nw_)
    [
      send
        (D.cf2_ ~crt:D.intruder ~src:a ~dst:b
           (D.ecfin2_ (D.hkey_ a p r1 r2) (D.cfin2_ [ a; b; i; c; r1; r2; p ])));
    ];
  act "fakeSf22"
    [
      "B", D.prin; "A", D.prin; "I", D.sid; "C", D.choice; "R1", D.rand;
      "R2", D.rand; "P", D.pms;
    ]
    (D.in_cpms p nw_)
    [
      send
        (D.sf2_ ~crt:D.intruder ~src:b ~dst:a
           (D.esfin2_ (D.hkey_ b p r1 r2) (D.sfin2_ [ a; b; i; c; r1; r2; p ])));
    ];

  let init = Term.const init_op in
  {
    Ots.ots_name =
      (match style with Original -> "TLS" | Cf2First -> "TLS-CF2FIRST");
    hidden = proto;
    init = init_op;
    observers = [ nw_obs; ss_obs; ur_obs; ui_obs; us_obs ];
    actions = List.rev !actions;
    init_equations =
      [
        Term.app nw_op [ init ], D.empty_network;
        Term.app ss_op [ init; op1; op2; oi ], D.no_session;
        Term.app ur_op [ init ], D.empty_urand;
        Term.app ui_op [ init ], D.empty_usid;
        Term.app us_op [ init ], D.empty_usecret;
      ];
  }

(* ------------------------------------------------------------------ *)
(* Memoized instances *)

let original = lazy (make Original)
let cf2first = lazy (make Cf2First)
let ots () = Lazy.force original
let variant_ots () = Lazy.force cf2first

let spec_original = lazy (Specgen.generate ~data:Data.spec (ots ()))
let spec_variant = lazy (Specgen.generate ~data:Data.spec (variant_ots ()))

let spec = function
  | Original -> Lazy.force spec_original
  | Cf2First -> Lazy.force spec_variant

let env style =
  let o = match style with Original -> ots () | Cf2First -> variant_ots () in
  Induction.make_env ~spec:(spec style) ~ots:o ()

(* ------------------------------------------------------------------ *)
(* Observer applications *)

let obs1 name o state = Ots.obs o name [] state
let nw o state = obs1 "nw" o state
let ur o state = obs1 "ur" o state
let ui o state = obs1 "ui" o state
let us o state = obs1 "us" o state
let ss o state ~owner ~peer ~sid = Ots.obs o "ss" [ owner; peer; sid ] state

let trustable_actions =
  [
    "chello"; "shello"; "cert"; "kexch"; "cfin"; "sfin"; "compl"; "chello2";
    "shello2"; "sfin2"; "cfin2"; "compl2";
  ]

let intruder_actions =
  [
    "fakeCh"; "fakeSh"; "fakeCh2"; "fakeSh2"; "fakeCt"; "fakeKx1"; "fakeCf1";
    "fakeSf1"; "fakeCf21"; "fakeSf21"; "fakeKx2"; "fakeCf2"; "fakeSf2";
    "fakeCf22"; "fakeSf22";
  ]

let action_names = trustable_actions @ intruder_actions
