(** The abstract TLS handshake protocol as an OTS (Section 4).

    Observers (Section 4.4):
    - [nw : Protocol -> Network] — the network / intruder storage /
      principals' send-memory;
    - [ss : Protocol Prin Prin Sid -> Session] — session states;
    - [ur], [ui], [us] — the sets of used random numbers, session IDs and
      secrets (freshness).

    Twelve transitions model trustable principals ([chello], [shello],
    [cert], [kexch], [cfin], [sfin], [compl], [chello2], [shello2], [sfin2],
    [cfin2], [compl2]) and fifteen model the intruder's fakes (Section 4.5):
    for each of the five ciphertext-carrying message kinds both a replay of a
    gleaned ciphertext and a construction from a known pre-master secret, and
    one fake for each of the five clear message kinds.

    Two protocol styles are provided: [Original] follows Figure 2 (in the
    abbreviated handshake, ServerFinished2 precedes ClientFinished2);
    [Cf2First] is the variant of Section 5.3 where the order of the two
    Finished2 messages is swapped.  The paper verifies the same five
    properties for both. *)

open Kernel
open Core

type style = Original | Cf2First

(** The hidden state sort [Protocol] (shared by both styles). *)
val protocol_sort : Sort.t

(** [make style] builds the transition system.  Each call creates fresh
    observer/action operators in a private signature; the two memoized
    instances below are what normal clients use. *)
val make : style -> Ots.t

(** The Figure-2 protocol (memoized). *)
val ots : unit -> Ots.t

(** The Section-5.3 variant (memoized). *)
val variant_ots : unit -> Ots.t

(** [spec style] is the generated equational theory (Section 2.3) of the
    corresponding OTS, importing {!Data.spec} (memoized). *)
val spec : style -> Cafeobj.Spec.t

(** [env style] is a fresh proof environment for the corresponding OTS.
    Fresh per call: proof campaigns create fresh constants in the spec, so
    sharing environments across campaigns is allowed but a fresh one keeps
    constant names readable. *)
val env : style -> Core.Induction.env

(** {1 Observer applications} *)

val nw : Ots.t -> Term.t -> Term.t
val ss : Ots.t -> Term.t -> owner:Term.t -> peer:Term.t -> sid:Term.t -> Term.t
val ur : Ots.t -> Term.t -> Term.t
val ui : Ots.t -> Term.t -> Term.t
val us : Ots.t -> Term.t -> Term.t

(** [action_names] lists the 27 action names in declaration order (12
    trustable + 15 intruder). *)
val action_names : string list

(** [trustable_actions] / [intruder_actions] partition {!action_names}. *)
val trustable_actions : string list

val intruder_actions : string list
