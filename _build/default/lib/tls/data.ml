open Kernel
module Spec = Cafeobj.Spec
module Datatype = Cafeobj.Datatype

let spec = Spec.create "TLS-DATA"

(* ------------------------------------------------------------------ *)
(* Sorts *)

let s name = Spec.declare_sort spec name
let prin = s "Prin"
let rand = s "Rand"
let choice = s "Choice"
let sid = s "Sid"
let list_of_choices = s "ListOfChoices"
let secret = s "Secret"
let pms = s "Pms"
let pub_key = s "PubKey"
let sig_ = s "Sig"
let cert_s = s "Cert"
let key = s "Key"
let cfinish = s "CFinish"
let sfinish = s "SFinish"
let cfinish2 = s "CFinish2"
let sfinish2 = s "SFinish2"
let enc_pms = s "EncPms"
let enc_cfin = s "EncCFin"
let enc_sfin = s "EncSFin"
let enc_cfin2 = s "EncCFin2"
let enc_sfin2 = s "EncSFin2"
let session = s "Session"
let msg = s "Msg"
let network = s "Network"
let urand = s "URand"
let usid = s "USid"
let usecret = s "USecret"

(* ------------------------------------------------------------------ *)
(* Constructors with projections *)

let ctor = Datatype.declare_ctor spec

let intruder_op = ctor ~sort:prin "intruder" []
let ca_op = ctor ~sort:prin "ca" []
let intruder = Term.const intruder_op
let ca = Term.const ca_op

let pms_op =
  ctor ~sort:pms "pms" [ "client", prin; "server", prin; "secret", secret ]

let pk_op = ctor ~sort:pub_key "pk" [ "owner", prin ]

let sig_op =
  ctor ~sort:sig_ "sig" [ "signer", prin; "subject", prin; "sigkey", pub_key ]

let cert_op =
  ctor ~sort:cert_s "cert" [ "cprin", prin; "ckey", pub_key; "csig", sig_ ]

let hkey_op =
  ctor ~sort:key "hkey"
    [ "kprin", prin; "kpms", pms; "krand1", rand; "krand2", rand ]

let finish_fields prefix ~with_list =
  [ prefix ^ "-a", prin; prefix ^ "-b", prin; prefix ^ "-i", sid ]
  @ (if with_list then [ prefix ^ "-l", list_of_choices ] else [])
  @ [
      prefix ^ "-c", choice;
      prefix ^ "-r1", rand;
      prefix ^ "-r2", rand;
      prefix ^ "-pms", pms;
    ]

let cfin_op = ctor ~sort:cfinish "cfin" (finish_fields "cfin" ~with_list:true)
let sfin_op = ctor ~sort:sfinish "sfin" (finish_fields "sfin" ~with_list:true)

let cfin2_op =
  ctor ~sort:cfinish2 "cfin2" (finish_fields "cfin2" ~with_list:false)

let sfin2_op =
  ctor ~sort:sfinish2 "sfin2" (finish_fields "sfin2" ~with_list:false)

let epms_op =
  ctor ~sort:enc_pms "epms" [ "epms-key", pub_key; "epms-body", pms ]

let ecfin_op =
  ctor ~sort:enc_cfin "ecfin" [ "ecfin-key", key; "ecfin-body", cfinish ]

let esfin_op =
  ctor ~sort:enc_sfin "esfin" [ "esfin-key", key; "esfin-body", sfinish ]

let ecfin2_op =
  ctor ~sort:enc_cfin2 "ecfin2" [ "ecfin2-key", key; "ecfin2-body", cfinish2 ]

let esfin2_op =
  ctor ~sort:enc_sfin2 "esfin2" [ "esfin2-key", key; "esfin2-body", sfinish2 ]

let st_op =
  ctor ~sort:session "st"
    [ "st-choice", choice; "st-rand1", rand; "st-rand2", rand; "st-pms", pms ]

let nosession_op = ctor ~sort:session "nosession" []
let no_session = Term.const nosession_op

(* Lists of cipher suites are real lists so that concrete executions can
   evaluate the membership check in [shello]/[cert]; in symbolic proofs they
   stay opaque constants and [choice-in] atoms are split by the prover. *)
let lnil_op = ctor ~sort:list_of_choices "lnil" []

let lcons_op =
  ctor ~sort:list_of_choices "lcons"
    [ "lhead", choice; "ltail", list_of_choices ]

(* The ten message constructors (Section 4.2); every message leads with
   creator, seeming sender, receiver. *)
let hdr = [ "crt", prin; "src", prin; "dst", prin ]
let ch_op = ctor ~sort:msg "ch" (hdr @ [ "rand", rand; "list", list_of_choices ])
let sh_op = ctor ~sort:msg "sh" (hdr @ [ "rand", rand; "sid", sid; "choice", choice ])
let ct_op = ctor ~sort:msg "ct" (hdr @ [ "cert-of", cert_s ])
let kx_op = ctor ~sort:msg "kx" (hdr @ [ "epms-of", enc_pms ])
let cf_op = ctor ~sort:msg "cf" (hdr @ [ "ecfin-of", enc_cfin ])
let sf_op = ctor ~sort:msg "sf" (hdr @ [ "esfin-of", enc_sfin ])
let ch2_op = ctor ~sort:msg "ch2" (hdr @ [ "rand", rand; "sid", sid ])
let sh2_op = ctor ~sort:msg "sh2" (hdr @ [ "rand", rand; "sid", sid; "choice", choice ])
let cf2_op = ctor ~sort:msg "cf2" (hdr @ [ "ecfin2-of", enc_cfin2 ])
let sf2_op = ctor ~sort:msg "sf2" (hdr @ [ "esfin2-of", enc_sfin2 ])

(* The network and the used-value sets. *)
let void_op = ctor ~sort:network "void" []
let net_add_op = ctor ~sort:network "_,_" [ "net-head", msg; "net-tail", network ]
let empty_ur_op = ctor ~sort:urand "empty-ur" []
let ur_add_op = ctor ~sort:urand "ur-add" [ "ur-head", rand; "ur-tail", urand ]
let empty_ui_op = ctor ~sort:usid "empty-ui" []
let ui_add_op = ctor ~sort:usid "ui-add" [ "ui-head", sid; "ui-tail", usid ]
let empty_us_op = ctor ~sort:usecret "empty-us" []

let us_add_op =
  ctor ~sort:usecret "us-add" [ "us-head", secret; "us-tail", usecret ]

(* Finalize the free datatypes: recognizers + no-confusion equality.  The
   container sorts (Network, URand, …) only get reflexivity: their equality
   is never decomposed (the paper compares them by membership only), and the
   message sets they hold are semantically bags. *)
let () =
  List.iter
    (Datatype.finalize_sort spec)
    [
      prin; pms; pub_key; sig_; cert_s; key; cfinish; sfinish; cfinish2;
      sfinish2; enc_pms; enc_cfin; enc_sfin; enc_cfin2; enc_sfin2; session;
      msg; list_of_choices;
    ];
  List.iter
    (fun srt ->
      Spec.add_rule spec
        (List.hd (Datatype.equality_rules_for ~ctors:[] srt)))
    [ rand; choice; sid; secret; network; urand; usid; usecret ]

(* ------------------------------------------------------------------ *)
(* Typed term builders *)

let pms_ ~client ~server secret_v = Term.app pms_op [ client; server; secret_v ]
let pk_ owner = Term.app pk_op [ owner ]
let sig_of ~signer ~subject k = Term.app sig_op [ signer; subject; k ]
let cert_of p k g = Term.app cert_op [ p; k; g ]
let hkey_ p pm r1 r2 = Term.app hkey_op [ p; pm; r1; r2 ]
let cfin_ args = Term.app cfin_op args
let sfin_ args = Term.app sfin_op args
let cfin2_ args = Term.app cfin2_op args
let sfin2_ args = Term.app sfin2_op args
let epms_ k p = Term.app epms_op [ k; p ]
let ecfin_ k f = Term.app ecfin_op [ k; f ]
let esfin_ k f = Term.app esfin_op [ k; f ]
let ecfin2_ k f = Term.app ecfin2_op [ k; f ]
let esfin2_ k f = Term.app esfin2_op [ k; f ]
let st_ c r1 r2 p = Term.app st_op [ c; r1; r2; p ]

let ch_ ~crt ~src ~dst r l = Term.app ch_op [ crt; src; dst; r; l ]
let sh_ ~crt ~src ~dst r i c = Term.app sh_op [ crt; src; dst; r; i; c ]
let ct_ ~crt ~src ~dst cert = Term.app ct_op [ crt; src; dst; cert ]
let kx_ ~crt ~src ~dst e = Term.app kx_op [ crt; src; dst; e ]
let cf_ ~crt ~src ~dst e = Term.app cf_op [ crt; src; dst; e ]
let sf_ ~crt ~src ~dst e = Term.app sf_op [ crt; src; dst; e ]
let ch2_ ~crt ~src ~dst r i = Term.app ch2_op [ crt; src; dst; r; i ]
let sh2_ ~crt ~src ~dst r i c = Term.app sh2_op [ crt; src; dst; r; i; c ]
let cf2_ ~crt ~src ~dst e = Term.app cf2_op [ crt; src; dst; e ]
let sf2_ ~crt ~src ~dst e = Term.app sf2_op [ crt; src; dst; e ]

(* ------------------------------------------------------------------ *)
(* Projections and recognizers *)

let proj name t = Term.app (Option.get (Spec.find_op spec name)) [ t ]
let crt t = proj "crt" t
let src t = proj "src" t
let dst t = proj "dst" t
let msg_rand t = proj "rand" t
let msg_list t = proj "list" t
let msg_sid t = proj "sid" t
let msg_choice t = proj "choice" t
let msg_cert t = proj "cert-of" t
let msg_epms t = proj "epms-of" t
let msg_ecfin t = proj "ecfin-of" t
let msg_esfin t = proj "esfin-of" t
let msg_ecfin2 t = proj "ecfin2-of" t
let msg_esfin2 t = proj "esfin2-of" t
let is_ch t = proj "ch?" t
let is_sh t = proj "sh?" t
let is_ct t = proj "ct?" t
let is_kx t = proj "kx?" t
let is_cf t = proj "cf?" t
let is_sf t = proj "sf?" t
let is_ch2 t = proj "ch2?" t
let is_sh2 t = proj "sh2?" t
let is_cf2 t = proj "cf2?" t
let is_sf2 t = proj "sf2?" t
let pms_client t = proj "client" t
let pms_server t = proj "server" t
let pms_secret t = proj "secret" t
let pk_owner t = proj "owner" t
let sig_signer t = proj "signer" t
let sig_subject t = proj "subject" t
let sig_key t = proj "sigkey" t
let cert_prin t = proj "cprin" t
let cert_key t = proj "ckey" t
let cert_sig t = proj "csig" t
let epms_key t = proj "epms-key" t
let epms_pms t = proj "epms-body" t
let ecfin_key t = proj "ecfin-key" t
let ecfin_body t = proj "ecfin-body" t
let esfin_key t = proj "esfin-key" t
let esfin_body t = proj "esfin-body" t
let ecfin2_key t = proj "ecfin2-key" t
let ecfin2_body t = proj "ecfin2-body" t
let esfin2_key t = proj "esfin2-key" t
let esfin2_body t = proj "esfin2-body" t
let hkey_prin t = proj "kprin" t
let hkey_pms t = proj "kpms" t
let hkey_rand1 t = proj "krand1" t
let hkey_rand2 t = proj "krand2" t
let st_choice t = proj "st-choice" t
let st_rand1 t = proj "st-rand1" t
let st_rand2 t = proj "st-rand2" t
let st_pms t = proj "st-pms" t

(* ------------------------------------------------------------------ *)
(* Membership predicates *)

let empty_network = Term.const void_op
let net_add m nw = Term.app net_add_op [ m; nw ]
let empty_urand = Term.const empty_ur_op
let ur_add r u = Term.app ur_add_op [ r; u ]
let empty_usid = Term.const empty_ui_op
let ui_add i u = Term.app ui_add_op [ i; u ]
let empty_usecret = Term.const empty_us_op
let us_add x u = Term.app us_add_op [ x; u ]

(* Generic membership over a cons-like container: one rule for the empty
   container, one peeling a cons cell. *)
let declare_membership name elem_sort container_sort ~empty ~cons_op =
  let op = Spec.declare_op spec name [ elem_sort; container_sort ] Sort.bool ~attrs:[] in
  let x = Term.var "X" elem_sort in
  let y = Term.var "Y" elem_sort in
  let tail = Term.var "TAIL" container_sort in
  Spec.add_eq spec ~label:(name ^ "-empty") (Term.app op [ x; empty ]) Term.ff;
  Spec.add_eq spec ~label:(name ^ "-cons")
    (Term.app op [ x; Term.app cons_op [ y; tail ] ])
    (Term.or_ (Term.eq x y) (Term.app op [ x; tail ]));
  op

let msg_in_op =
  declare_membership "msg-in" msg network ~empty:empty_network ~cons_op:net_add_op

let rand_in_op =
  declare_membership "rand-in" rand urand ~empty:empty_urand ~cons_op:ur_add_op

let sid_in_op =
  declare_membership "sid-in" sid usid ~empty:empty_usid ~cons_op:ui_add_op

let secret_in_op =
  declare_membership "secret-in" secret usecret ~empty:empty_usecret
    ~cons_op:us_add_op

let msg_in m nw = Term.app msg_in_op [ m; nw ]
let rand_in r u = Term.app rand_in_op [ r; u ]
let sid_in i u = Term.app sid_in_op [ i; u ]
let secret_in x u = Term.app secret_in_op [ x; u ]

let choice_in_op =
  declare_membership "choice-in" choice list_of_choices
    ~empty:(Term.const lnil_op) ~cons_op:lcons_op

let choice_in c l = Term.app choice_in_op [ c; l ]
let lnil = Term.const lnil_op
let lcons c l = Term.app lcons_op [ c; l ]
let list_of cs = List.fold_right lcons cs lnil

(* ------------------------------------------------------------------ *)
(* Gleaning collections (Section 4.3)

   Each collection is a membership predicate defined by structural recursion
   over the network.  For every message constructor there is one equation:
   either the message kind contributes a gleanable quantity or it passes
   through.  [in-cpms] additionally knows that every pre-master secret
   generated by the intruder is available at any time (its [void] case). *)

let msg_ctors =
  [ ch_op; sh_op; ct_op; kx_op; cf_op; sf_op; ch2_op; sh2_op; cf2_op; sf2_op ]

let ctor_vars (op : Signature.op) =
  List.mapi (fun i srt -> Term.var (Printf.sprintf "A%d" i) srt) op.Signature.arity

let declare_collection name elem_sort ~void_case ~glean =
  let op =
    Spec.declare_op spec name [ elem_sort; network ] Sort.bool ~attrs:[]
  in
  let x = Term.var "X" elem_sort in
  let tail = Term.var "TAIL" network in
  Spec.add_eq spec ~label:(name ^ "-void") (Term.app op [ x; empty_network ])
    (void_case x);
  List.iter
    (fun mc ->
      let vars = ctor_vars mc in
      let m = Term.app mc vars in
      let rest = Term.app op [ x; tail ] in
      let rhs =
        match glean mc x vars with
        | None -> rest
        | Some found -> Term.or_ found rest
      in
      Spec.add_eq spec
        ~label:(Printf.sprintf "%s-%s" name mc.Signature.name)
        (Term.app op [ x; net_add m tail ])
        rhs)
    msg_ctors;
  op

let payload (op : Signature.op) vars =
  (* Last field of the message constructor (the non-header payload used by
     the gleaning equations). *)
  ignore op;
  List.nth vars (List.length vars - 1)

let in_cpms_op =
  declare_collection "in-cpms" pms
    ~void_case:(fun x -> Term.eq (pms_client x) intruder)
    ~glean:(fun mc x vars ->
      if Signature.op_equal mc kx_op then
        let e = payload mc vars in
        Some
          (Term.and_
             (Term.eq (epms_key e) (pk_ intruder))
             (Term.eq x (epms_pms e)))
      else None)

let in_csig_op =
  declare_collection "in-csig" sig_
    ~void_case:(fun x ->
      (* The intruder owns a genuine certificate, hence its signature. *)
      Term.eq x (sig_of ~signer:ca ~subject:intruder (pk_ intruder)))
    ~glean:(fun mc x vars ->
      if Signature.op_equal mc ct_op then
        Some (Term.eq x (cert_sig (payload mc vars)))
      else None)

let simple_collection name elem_sort selector_ctor =
  declare_collection name elem_sort
    ~void_case:(fun _ -> Term.ff)
    ~glean:(fun mc x vars ->
      if Signature.op_equal mc selector_ctor then
        Some (Term.eq x (payload mc vars))
      else None)

let in_cepms_op = simple_collection "in-cepms" enc_pms kx_op
let in_cecfin_op = simple_collection "in-cecfin" enc_cfin cf_op
let in_cesfin_op = simple_collection "in-cesfin" enc_sfin sf_op
let in_cecfin2_op = simple_collection "in-cecfin2" enc_cfin2 cf2_op
let in_cesfin2_op = simple_collection "in-cesfin2" enc_sfin2 sf2_op

let in_cpms x nw = Term.app in_cpms_op [ x; nw ]
let in_csig x nw = Term.app in_csig_op [ x; nw ]
let in_cepms x nw = Term.app in_cepms_op [ x; nw ]
let in_cecfin x nw = Term.app in_cecfin_op [ x; nw ]
let in_cesfin x nw = Term.app in_cesfin_op [ x; nw ]
let in_cecfin2 x nw = Term.app in_cecfin2_op [ x; nw ]
let in_cesfin2 x nw = Term.app in_cesfin2_op [ x; nw ]
