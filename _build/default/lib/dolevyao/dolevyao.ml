module type ALGEBRA = sig
  type t

  val compare : t -> t -> int
  val analyze : knows:(t -> bool) -> t -> t list
  val components : t -> t list option
end

module Make (A : ALGEBRA) = struct
  module S = Set.Make (A)

  type knowledge = S.t

  let empty = S.empty
  let knows k item = S.mem item k

  (* Close under analysis: repeatedly tear every known item apart until no
     new item appears.  Termination: analysis only ever returns (strict)
     sub-items in the intended algebras, and the set grows monotonically. *)
  let close (k : knowledge) : knowledge =
    let rec go k =
      let knows item = S.mem item k in
      let fresh =
        S.fold
          (fun item acc ->
            List.fold_left
              (fun acc sub -> if S.mem sub k then acc else S.add sub acc)
              acc (A.analyze ~knows item))
          k S.empty
      in
      if S.is_empty fresh then k else go (S.union k fresh)
    in
    go k

  let learn k items = close (List.fold_left (fun k i -> S.add i k) k items)

  (* Synthesis with memoization on the current query only (knowledge is
     immutable).  A cycle in [components] is treated as non-derivable. *)
  let derivable k item =
    let visiting = Hashtbl.create 16 in
    let rec go item =
      if S.mem item k then true
      else if Hashtbl.mem visiting item then false
      else begin
        Hashtbl.add visiting item ();
        let answer =
          match A.components item with
          | None -> false
          | Some parts -> List.for_all go parts
        in
        Hashtbl.remove visiting item;
        answer
      end
    in
    go item

  let items k = S.elements k
  let size = S.cardinal
  let compare = S.compare
end
