(** A generic Dolev-Yao intruder knowledge engine (Section 4.1 of the
    paper, after Dolev and Yao 1983).

    The engine is parametric in the message algebra.  Knowledge is a set of
    items closed under {e analysis} (tearing items apart: projecting tuple
    fields, decrypting with known keys) and queried under {e synthesis}
    (rebuilding: an item is derivable if it is known outright or if all the
    components it can be built from are derivable).

    The symbolic counterpart of this engine is the family of gleaning
    collections in {!Tls.Data}; this concrete version drives the explicit-
    state model checker. *)

module type ALGEBRA = sig
  type t

  val compare : t -> t -> int

  (** [analyze ~knows item] lists the items extractable from [item] given
      the current knowledge — e.g. the fields of a pair, or the plaintext
      of a ciphertext when [knows] its decryption key.  Called repeatedly
      until fixpoint, so it may answer conservatively based on the current
      [knows]. *)
  val analyze : knows:(t -> bool) -> t -> t list

  (** [components item] describes how [item] could be constructed by the
      intruder: [None] if it is atomic (only derivable if known), [Some
      parts] if deriving every part suffices to build [item] (e.g. a hash
      from its preimages, a ciphertext from key and body). *)
  val components : t -> t list option
end

module Make (A : ALGEBRA) : sig
  type knowledge

  val empty : knowledge

  (** [learn k items] adds [items] and re-closes under analysis. *)
  val learn : knowledge -> A.t list -> knowledge

  (** [knows k item] — is [item] literally in the closed set? *)
  val knows : knowledge -> A.t -> bool

  (** [derivable k item] — can the intruder synthesize [item]? *)
  val derivable : knowledge -> A.t -> bool

  (** [items k] lists the closed knowledge set. *)
  val items : knowledge -> A.t list

  val size : knowledge -> int

  (** [compare] is a total order usable for state hashing. *)
  val compare : knowledge -> knowledge -> int
end
