(** Associative-commutative normalization and matching.

    The network of the paper's model is a bag of messages built with the AC
    constructor [_,_] (Section 4.3).  This module provides:

    - a canonical form for terms headed by AC operators (flatten, then sort
      arguments), so that AC-equal ground terms compare equal;
    - AC matching, where a pattern variable under an AC operator may absorb
      any non-empty sub-multiset of the subject's arguments.

    Terms keep their binary representation; flattened argument lists are
    internal and canonical forms are rebuilt as right-nested combs. *)

(** [flatten op t] lists the maximal non-[op] subterms of [t] under nested
    applications of the AC operator [op] (in left-to-right order). *)
val flatten : Signature.op -> Term.t -> Term.t list

(** [rebuild op args] right-nests [args] under [op].
    @raise Invalid_argument on an empty list. *)
val rebuild : Signature.op -> Term.t list -> Term.t

(** [normalize t] canonicalizes every AC-headed subterm (flatten + sort) and
    sorts the arguments of [Comm] operators.  Idempotent. *)
val normalize : Term.t -> Term.t

(** [ac_equal t1 t2] is equality modulo AC (by comparing normal forms). *)
val ac_equal : Term.t -> Term.t -> bool

(** [match_ pat subject] finds all matchers of [pat] against [subject]
    modulo AC, extending [Subst.empty].  The list is empty iff there is no
    match; duplicates are pruned. *)
val match_ : Term.t -> Term.t -> Subst.t list

(** [match_first pat subject] is the first AC matcher, if any. *)
val match_first : Term.t -> Term.t -> Subst.t option
