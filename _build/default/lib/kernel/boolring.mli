(** Boolean-ring normal forms — CafeOBJ's builtin [BOOL].

    The paper relies on the fact that BOOL's equations, read as rewrite
    rules, are complete for propositional logic (Hsiang-Dershowitz, cited as
    [5]): every tautology rewrites to [true] and every contradiction to
    [false].  The canonical form behind that system is the boolean ring
    (exclusive-or / conjunction) polynomial: a formula is represented as an
    xor of monomials, each monomial a set of atoms, with
    [x xor x = false] and [x and x = x].

    This module implements that normal form directly (used by the proof
    engine, where it decides the [red] goals of proof passages), and also
    exports the corresponding rewrite rules for the generic engine (used by
    the mini-CafeOBJ REPL and the E10 benchmark).

    An {e atom} is any [Bool]-sorted term that is not headed by a builtin
    boolean operator.  Equality atoms are canonicalized by ordering their
    sides, so [a = b] and [b = a] denote the same atom. *)

type t

val tru : t
val fls : t

(** [atom t] injects a non-builtin boolean term as an atomic polynomial.
    @raise Invalid_argument if [t] is not of sort [Bool]. *)
val atom : Term.t -> t

val xor_ : t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val not_ : t -> t
val implies_ : t -> t -> t
val iff_ : t -> t -> t

val is_true : t -> bool
val is_false : t -> bool
val equal : t -> t -> bool

(** [of_term t] converts a [Bool]-sorted term to its polynomial: builtin
    connectives (including [Bool]-sorted [if_then_else]) are interpreted,
    everything else becomes an atom.  Trivially reflexive equality atoms
    collapse to [true]. *)
val of_term : Term.t -> t

(** [to_term p] renders the polynomial back as a term (xor of conjunctions,
    in canonical atom order). *)
val to_term : t -> Term.t

(** [atoms p] lists the distinct atoms occurring in [p], in canonical
    order. *)
val atoms : Term.t -> Term.t list

val atoms_of : t -> Term.t list

(** [assign p atom value] specializes [p] under [atom := value] and
    renormalizes. *)
val assign : t -> Term.t -> bool -> t

(** [map_atoms f p] rebuilds [p] with every atom [a] replaced by the formula
    [f a] (used to renormalize atoms after a substitution). *)
val map_atoms : (Term.t -> t) -> t -> t

(** [tautology t] decides propositional validity of [t]: its polynomial is
    [true]. *)
val tautology : Term.t -> bool

(** [count_monomials p] is the number of monomials (complexity measure used
    in benchmarks). *)
val count_monomials : t -> int

val pp : Format.formatter -> t -> unit

(** The Hsiang rewrite system for the generic engine: orientations of the
    boolean-ring axioms, including the AC-extension variants needed for
    flattened xor/and chains.  Complete for propositional logic, but its
    distribution rule can blow terms up — use it for [red]-style reductions
    of standalone formulas (REPL, E10 benchmark), not mixed into large
    protocol rule sets. *)
val rewrite_rules : unit -> Rewrite.rule list

(** Constant-folding rules only ([not true = false], [true and X = X], …):
    linear and safe to mix with any rule set.  These are what the implicit
    BOOL import of {!Cafeobj.Spec} provides; full propositional decisions
    are made on polynomials by the prover. *)
val const_rules : unit -> Rewrite.rule list
