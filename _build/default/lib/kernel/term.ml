type var = { v_name : string; v_sort : Sort.t }

type t =
  | Var of var
  | App of Signature.op * t list

let var v_name v_sort = Var { v_name; v_sort }

let sort = function
  | Var v -> v.v_sort
  | App (o, _) -> o.Signature.sort

let app op args =
  let arity = op.Signature.arity in
  if List.length arity <> List.length args then
    invalid_arg
      (Printf.sprintf "Term.app: %s expects %d arguments, got %d"
         op.Signature.name (List.length arity) (List.length args));
  List.iter2
    (fun s a ->
      if not (Sort.equal s (sort a)) then
        invalid_arg
          (Printf.sprintf "Term.app: %s: argument of sort %s where %s expected"
             op.Signature.name (sort a).Sort.name s.Sort.name))
    arity args;
  App (op, args)

let const op = app op []

module B = Signature.Builtin

let tt = const B.tt
let ff = const B.ff
let bool_ b = if b then tt else ff
let not_ t = app B.not_ [ t ]
let and_ t1 t2 = app B.and_ [ t1; t2 ]
let or_ t1 t2 = app B.or_ [ t1; t2 ]
let xor t1 t2 = app B.xor [ t1; t2 ]
let implies t1 t2 = app B.implies [ t1; t2 ]
let iff t1 t2 = app B.iff [ t1; t2 ]

let conj = function [] -> tt | t :: ts -> List.fold_left and_ t ts
let disj = function [] -> ff | t :: ts -> List.fold_left or_ t ts

let eq t1 t2 =
  let s1 = sort t1 and s2 = sort t2 in
  if not (Sort.equal s1 s2) then
    invalid_arg
      (Printf.sprintf "Term.eq: sorts %s and %s differ" s1.Sort.name
         s2.Sort.name);
  app (B.eq s1) [ t1; t2 ]

let ite c t e = app (B.if_ (sort t)) [ c; t; e ]

let var_equal v1 v2 =
  String.equal v1.v_name v2.v_name && Sort.equal v1.v_sort v2.v_sort

let rec equal t1 t2 =
  t1 == t2
  ||
  match t1, t2 with
  | Var v1, Var v2 -> var_equal v1 v2
  | App (o1, a1), App (o2, a2) ->
    Signature.op_equal o1 o2 && List.for_all2 equal a1 a2
  | Var _, App _ | App _, Var _ -> false

let rec compare t1 t2 =
  if t1 == t2 then 0
  else
    match t1, t2 with
    | Var v1, Var v2 ->
      let c = String.compare v1.v_name v2.v_name in
      if c <> 0 then c else Sort.compare v1.v_sort v2.v_sort
    | Var _, App _ -> -1
    | App _, Var _ -> 1
    | App (o1, a1), App (o2, a2) ->
      let c = Signature.op_compare o1 o2 in
      if c <> 0 then c else List.compare compare a1 a2

let rec hash t =
  match t with
  | Var v -> Hashtbl.hash (0, v.v_name, v.v_sort.Sort.name)
  | App (o, args) -> Hashtbl.hash (1, o.Signature.name, List.map hash args)

let vars t =
  let rec go acc = function
    | Var v -> if List.exists (var_equal v) acc then acc else v :: acc
    | App (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let rec is_ground = function
  | Var _ -> false
  | App (_, args) -> List.for_all is_ground args

let rec size = function
  | Var _ -> 1
  | App (_, args) -> List.fold_left (fun n a -> n + size a) 1 args

let rec depth = function
  | Var _ -> 1
  | App (_, args) -> 1 + List.fold_left (fun n a -> max n (depth a)) 0 args

let subterms t =
  let rec go acc t =
    let acc = t :: acc in
    match t with Var _ -> acc | App (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let rec occurs ~inside t =
  equal inside t
  ||
  match inside with
  | Var _ -> false
  | App (_, args) -> List.exists (fun a -> occurs ~inside:a t) args

let rec replace ~old ~by t =
  if equal t old then by
  else
    match t with
    | Var _ -> t
    | App (o, args) -> App (o, List.map (replace ~old ~by) args)

let map_children f = function
  | Var _ as t -> t
  | App (o, args) -> App (o, List.map f args)

let rec pp ppf = function
  | Var v -> Format.fprintf ppf "%s:%s" v.v_name v.v_sort.Sort.name
  | App (o, []) -> Format.pp_print_string ppf o.Signature.name
  | App (o, args) ->
    Format.fprintf ppf "%s(%a)" o.Signature.name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      args

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
