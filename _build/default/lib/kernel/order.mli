(** Reduction orders for orienting equations.

    The lexicographic path order (LPO) over a total operator precedence: a
    simplification order, so [lpo ~prec s t = true] guarantees that the
    rule [s -> t] terminates (in combination with any other LPO-oriented
    rules under the same precedence).  Used by {!Completion} and available
    for termination-checking hand-written systems. *)

(** [lpo ~prec s t] — is [s] strictly greater than [t]?  [prec] must be a
    total order on operators (compare by name, by a user list, …). *)
val lpo :
  prec:(Signature.op -> Signature.op -> int) -> Term.t -> Term.t -> bool

(** [precedence_of_list ops] builds a precedence from a list, {e later}
    operators being greater; operators not listed compare by name below
    all listed ones. *)
val precedence_of_list :
  Signature.op list -> Signature.op -> Signature.op -> int

(** [orients ~prec (lhs, rhs)] — can the equation be oriented left to
    right ([`Lr]), right to left ([`Rl]), or not at all ([`No])? *)
val orients :
  prec:(Signature.op -> Signature.op -> int) ->
  Term.t * Term.t ->
  [ `Lr | `Rl | `No ]

(** [terminating ~prec rules] — [true] if every rule is LPO-decreasing
    under [prec] (a sufficient termination check). *)
val terminating :
  prec:(Signature.op -> Signature.op -> int) -> Rewrite.rule list -> bool
