(** Syntactic (one-way) matching.

    [match_ pattern subject] finds a substitution [s] with
    [Subst.apply s pattern = subject], treating variables of [pattern] as
    match variables and [subject] as a closed term (its variables, if any,
    are constants for the purpose of matching).  This is the matching used by
    left-to-right rewriting with CafeOBJ's [red].

    Operators declared [Comm] are matched modulo commutativity; full AC
    matching lives in {!Ac}. *)

(** [match_ pat subject] is the most general matcher, if one exists. *)
val match_ : Term.t -> Term.t -> Subst.t option

(** [match_under sub pat subject] extends the pre-existing bindings [sub];
    used for matching several patterns sharing variables (e.g. the two sides
    of a conditional rule). *)
val match_under : Subst.t -> Term.t -> Term.t -> Subst.t option

(** [matches pat subject] is [true] iff some matcher exists. *)
val matches : Term.t -> Term.t -> bool

(** [unify t1 t2] computes a most general unifier of [t1] and [t2] (both
    sides' variables may be instantiated; occurs-check included).  Used by
    the critical-pair computation in {!Completion}. *)
val unify : Term.t -> Term.t -> Subst.t option
