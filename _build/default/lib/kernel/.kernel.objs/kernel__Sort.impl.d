lib/kernel/sort.ml: Format Hashtbl List Printf String
