lib/kernel/subst.mli: Format Term
