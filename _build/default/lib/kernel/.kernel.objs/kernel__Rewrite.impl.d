lib/kernel/rewrite.ml: Ac Format Hashtbl List Matching Option Printf Signature Sort String Subst Term
