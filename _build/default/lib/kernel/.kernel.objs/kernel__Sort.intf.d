lib/kernel/sort.mli: Format
