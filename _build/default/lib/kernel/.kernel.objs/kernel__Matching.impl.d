lib/kernel/matching.ml: List Option Signature Sort String Subst Term
