lib/kernel/completion.ml: List Matching Option Order Printf Rewrite Subst Term
