lib/kernel/ac.ml: Hashtbl List Signature Sort Subst Term
