lib/kernel/rewrite.mli: Format Term
