lib/kernel/order.mli: Rewrite Signature Term
