lib/kernel/term.mli: Format Hashtbl Map Set Signature Sort
