lib/kernel/ac.mli: Signature Subst Term
