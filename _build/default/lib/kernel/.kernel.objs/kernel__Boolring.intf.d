lib/kernel/boolring.mli: Format Rewrite Term
