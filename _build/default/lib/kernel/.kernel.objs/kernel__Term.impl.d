lib/kernel/term.ml: Format Hashtbl List Map Printf Set Signature Sort String
