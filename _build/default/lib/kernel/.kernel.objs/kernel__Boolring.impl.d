lib/kernel/boolring.ml: List Rewrite Signature Sort Term
