lib/kernel/iflift.mli: Rewrite Signature Sort
