lib/kernel/order.ml: List Rewrite Signature Sort String Term
