lib/kernel/matching.mli: Subst Term
