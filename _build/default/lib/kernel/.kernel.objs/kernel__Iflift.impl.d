lib/kernel/iflift.ml: List Printf Rewrite Signature Sort Term
