lib/kernel/signature.ml: Format Hashtbl List Printf Sort String
