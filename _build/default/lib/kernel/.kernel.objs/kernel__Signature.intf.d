lib/kernel/signature.mli: Format Sort
