lib/kernel/completion.mli: Rewrite Signature Term
