lib/kernel/subst.ml: Format List Map Printf Sort String Term
