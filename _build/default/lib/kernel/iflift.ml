module B = Signature.Builtin

(* One lifting rule per liftable argument position of [op]. *)
let rules_for_op (op : Signature.op) =
  if B.is_if op then []
  else
    let arity = op.Signature.arity in
    let numbered = List.mapi (fun i s -> i, s) arity in
    List.filter_map
      (fun (pos, arg_sort) ->
        if Sort.equal arg_sort Sort.bool then None
        else begin
          let cond = Term.var "C" Sort.bool in
          let a = Term.var "IFA" arg_sort and b = Term.var "IFB" arg_sort in
          let others =
            List.map
              (fun (i, s) -> Term.var (Printf.sprintf "X%d" i) s)
              numbered
          in
          let place mid =
            List.mapi (fun i x -> if i = pos then mid else x) others
          in
          let lhs = Term.app op (place (Term.ite cond a b)) in
          let rhs =
            Term.ite cond (Term.app op (place a)) (Term.app op (place b))
          in
          let label = Printf.sprintf "lift-%s-%d" op.Signature.name pos in
          Some (Rewrite.rule ~label lhs rhs)
        end)
      numbered

let rules sg = List.concat_map rules_for_op (Signature.ops sg)

let simplify_rules sort =
  let c = Term.var "C" Sort.bool in
  let x = Term.var "X" sort and y = Term.var "Y" sort in
  let name = sort.Sort.name in
  [
    Rewrite.rule ~label:("if-true-" ^ name) (Term.ite Term.tt x y) x;
    Rewrite.rule ~label:("if-false-" ^ name) (Term.ite Term.ff x y) y;
    Rewrite.rule ~label:("if-same-" ^ name) (Term.ite c x x) x;
  ]
