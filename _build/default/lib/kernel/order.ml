let var_equal (v1 : Term.var) (v2 : Term.var) =
  String.equal v1.v_name v2.v_name && Sort.equal v1.v_sort v2.v_sort

(* Lexicographic path order.  s > t iff
   - t is a variable occurring in s with s <> t; or, for s = f(s1..sm):
   - some si >= t; or
   - t = g(t1..tn) with f > g and s > tj for all j; or
   - t = f(t1..tn) with (s1..sm) >lex (t1..tn) and s > tj for all j. *)
let lpo ~prec s t =
  let rec gt s t =
    match s, t with
    | Term.Var _, _ -> false
    | Term.App _, Term.Var v ->
      List.exists (var_equal v) (Term.vars s)
    | Term.App (f, ss), Term.App (g, ts) ->
      List.exists (fun si -> ge si t) ss
      ||
      let c = prec f g in
      if c > 0 then List.for_all (gt s) ts
      else if c = 0 then lex ss ts && List.for_all (gt s) ts
      else false
  and ge s t = Term.equal s t || gt s t
  and lex ss ts =
    match ss, ts with
    | s1 :: ss', t1 :: ts' ->
      if Term.equal s1 t1 then lex ss' ts' else gt s1 t1
    | [], _ :: _ | _ :: _, [] | [], [] -> false
  in
  gt s t

let precedence_of_list ops o1 o2 =
  let index o =
    let rec go i = function
      | [] -> None
      | x :: rest -> if Signature.op_equal x o then Some i else go (i + 1) rest
    in
    go 0 ops
  in
  match index o1, index o2 with
  | Some i, Some j -> compare i j
  | Some _, None -> 1
  | None, Some _ -> -1
  | None, None -> Signature.op_compare o1 o2

let orients ~prec (lhs, rhs) =
  if lpo ~prec lhs rhs then `Lr else if lpo ~prec rhs lhs then `Rl else `No

let terminating ~prec rules =
  List.for_all (fun (r : Rewrite.rule) -> lpo ~prec r.Rewrite.lhs r.Rewrite.rhs) rules
