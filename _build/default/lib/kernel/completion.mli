(** Knuth-Bendix completion.

    The paper's method rests on equations used as left-to-right rewrite
    rules; completion is the classical procedure that turns a set of
    equations into a {e confluent} and terminating rule set (when it
    succeeds), so that rewriting decides the equational theory — the same
    property CafeOBJ's BOOL enjoys by construction (Hsiang-Dershowitz,
    the paper's reference [5], is exactly about such rewrite methods).

    The implementation is the textbook procedure: compute critical pairs
    by unifying left-hand sides into non-variable subterm positions,
    normalize both sides with the current rules, orient the survivors with
    the LPO ({!Order.lpo}) and iterate. *)

type failure = {
  reason : string;
  unorientable : (Term.t * Term.t) option;
}

type result =
  | Completed of Rewrite.rule list
  | Failed of failure

(** [critical_pairs r1 r2] computes the critical pairs obtained by
    overlapping [r2]'s left-hand side into non-variable positions of
    [r1]'s (variables renamed apart; the trivial root self-overlap of a
    rule with itself is skipped). *)
val critical_pairs : Rewrite.rule -> Rewrite.rule -> (Term.t * Term.t) list

(** [complete ?max_rules ?max_steps ~prec equations] runs completion.
    @param max_rules abort when more rules than this are generated
    (default 64). *)
val complete :
  ?max_rules:int ->
  prec:(Signature.op -> Signature.op -> int) ->
  (Term.t * Term.t) list ->
  result

(** [joinable rules t1 t2] — do [t1] and [t2] have the same normal form
    under [rules]?  With a completed system this decides the equational
    theory. *)
val joinable : Rewrite.rule list -> Term.t -> Term.t -> bool
