(** First-order terms over an order-sorted signature.

    A term is either a sorted variable or the application of an operator to
    argument terms (constants are nullary applications).  Terms are the
    universal currency of the kernel: protocol states, messages, boolean
    formulas and proof goals are all terms. *)

type var = { v_name : string; v_sort : Sort.t }

type t =
  | Var of var
  | App of Signature.op * t list

(** {1 Construction} *)

(** [var name sort] builds a variable. *)
val var : string -> Sort.t -> t

(** [app op args] builds an application.
    @raise Invalid_argument if the number of arguments does not match the
    operator's arity (sorts of the arguments are checked too). *)
val app : Signature.op -> t list -> t

(** [const op] is [app op []]. *)
val const : Signature.op -> t

(** {1 Builtin sugar} *)

val tt : t
val ff : t
val bool_ : bool -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val implies : t -> t -> t
val iff : t -> t -> t

(** [conj ts] folds [and_] over [ts] ([tt] when empty). *)
val conj : t list -> t

(** [disj ts] folds [or_] over [ts] ([ff] when empty). *)
val disj : t list -> t

(** [eq t1 t2] is the equality atom at the (common) sort of [t1], [t2].
    @raise Invalid_argument on sort mismatch. *)
val eq : t -> t -> t

(** [ite c t e] is [if_then_else_fi] at the sort of [t]. *)
val ite : t -> t -> t -> t

(** {1 Inspection} *)

(** [sort t] is the sort of [t]. *)
val sort : t -> Sort.t

(** [equal]/[compare] are structural (variables by name and sort, operators
    by name). *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** [hash t] is a structural hash consistent with {!equal}. *)
val hash : t -> int

(** [vars t] lists the distinct variables of [t], left-to-right. *)
val vars : t -> var list

(** [is_ground t] is [true] iff [t] has no variables. *)
val is_ground : t -> bool

(** [size t] counts operator and variable occurrences. *)
val size : t -> int

(** [depth t] is the height of the term tree ([1] for leaves). *)
val depth : t -> int

(** [subterms t] lists every subterm of [t] including [t] itself
    (pre-order). *)
val subterms : t -> t list

(** [occurs ~inside t] tests whether [t] occurs as a subterm of [inside]. *)
val occurs : inside:t -> t -> bool

(** [replace ~old ~by t] replaces every occurrence of the subterm [old] by
    [by] in [t] (used for congruence-by-substitution in the prover). *)
val replace : old:t -> by:t -> t -> t

(** [map_children f t] applies [f] to the immediate children of [t]. *)
val map_children : (t -> t) -> t -> t

(** {1 Printing} *)

(** Prefix pretty-printer: [f(a, b)], variables as [X:Sort]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
