(** Substitutions: finite maps from variables to terms. *)

type t

val empty : t
val is_empty : t -> bool

(** [bind sub v t] extends [sub] with [v := t].
    @raise Invalid_argument if the sorts of [v] and [t] differ, or if [v] is
    already bound to a different term. *)
val bind : t -> Term.var -> Term.t -> t

(** [find sub v] is the binding of [v], if any. *)
val find : t -> Term.var -> Term.t option

(** [of_list bindings] builds a substitution from scratch. *)
val of_list : (Term.var * Term.t) list -> t

val bindings : t -> (Term.var * Term.t) list

(** [apply sub t] replaces every bound variable of [t] by its image
    (simultaneous, not iterated). *)
val apply : t -> Term.t -> Term.t

(** [domain sub] lists the bound variables. *)
val domain : t -> Term.var list

val pp : Format.formatter -> t -> unit
