(** If-lifting: pushing [if_then_else] toward the root.

    Action effects are encoded as unconditional equations whose right-hand
    sides guard on the effective condition with [if_then_else] (see
    DESIGN.md).  To let structural rules (projections, membership, equality
    decomposition) see through those guards, we generate {e lifting} rules

    [f(..., if c then a else b, ...) = if c then f(...,a,...) else f(...,b,...)]

    for every non-[Bool] argument position of every operator.  Once an [if]
    reaches a [Bool]-sorted position it is absorbed by the boolean ring
    ({!Boolring.of_term}).

    Lifting terminates: each application strictly decreases the multiset of
    depths of [if] occurrences. *)

(** [rules_for_op op] generates the lifting rules for each non-[Bool]
    argument position of [op] (none for [if_then_else] operators
    themselves). *)
val rules_for_op : Signature.op -> Rewrite.rule list

(** [rules sg] generates lifting rules for every declared operator of
    [sg]. *)
val rules : Signature.t -> Rewrite.rule list

(** [simplify_rules sort] generates
    [if true then X else Y = X], [if false then X else Y = Y] and
    [if C then X else X = X] at [sort]. *)
val simplify_rules : Sort.t -> Rewrite.rule list
