type rule = {
  label : string;
  lhs : Term.t;
  rhs : Term.t;
  cond : Term.t option;
}

let var_subset small big =
  let inside = Term.vars big in
  List.for_all
    (fun (v : Term.var) ->
      List.exists
        (fun (w : Term.var) ->
          String.equal v.v_name w.v_name && Sort.equal v.v_sort w.v_sort)
        inside)
    (Term.vars small)

let rule ?cond ~label lhs rhs =
  (match lhs with
  | Term.Var _ -> invalid_arg (Printf.sprintf "Rewrite.rule %s: variable lhs" label)
  | Term.App _ -> ());
  if not (Sort.equal (Term.sort lhs) (Term.sort rhs)) then
    invalid_arg (Printf.sprintf "Rewrite.rule %s: sorts differ" label);
  if not (var_subset rhs lhs) then
    invalid_arg
      (Printf.sprintf "Rewrite.rule %s: rhs has variables not in lhs" label);
  (match cond with
  | Some c ->
    if not (Sort.equal (Term.sort c) Sort.bool) then
      invalid_arg (Printf.sprintf "Rewrite.rule %s: non-boolean condition" label);
    if not (var_subset c lhs) then
      invalid_arg
        (Printf.sprintf "Rewrite.rule %s: condition has variables not in lhs"
           label)
  | None -> ());
  { label; lhs; rhs; cond }

type system = {
  ordered : rule list;
  index : (string, rule list) Hashtbl.t;  (** head operator name -> rules *)
  cache : Term.t Term.Tbl.t;
  mutable step_limit : int;
  steps_total : int ref;  (** shared with systems derived by [extend] *)
  mutable budget : int;
}

let head_name r =
  match r.lhs with
  | Term.App (o, _) -> o.Signature.name
  | Term.Var _ -> assert false

let build_index rules =
  let index = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let key = head_name r in
      let existing = Option.value ~default:[] (Hashtbl.find_opt index key) in
      Hashtbl.replace index key (existing @ [ r ]))
    rules;
  index

let make rules =
  {
    ordered = rules;
    index = build_index rules;
    cache = Term.Tbl.create 1024;
    step_limit = 5_000_000;
    steps_total = ref 0;
    budget = 0;
  }

let rules sys = sys.ordered

let extend sys extra =
  let rules = extra @ sys.ordered in
  {
    ordered = rules;
    index = build_index rules;
    cache = Term.Tbl.create 1024;
    step_limit = sys.step_limit;
    steps_total = sys.steps_total;
    budget = 0;
  }

exception Step_limit_exceeded

let set_step_limit sys n = sys.step_limit <- n
let steps sys = !(sys.steps_total)
let reset_steps sys = sys.steps_total := 0
let clear_cache sys = Term.Tbl.reset sys.cache

let tick sys =
  incr sys.steps_total;
  sys.budget <- sys.budget - 1;
  if sys.budget <= 0 then raise Step_limit_exceeded

(* Leftmost-innermost normalization with memoization.  Children are
   normalized first; then root rules are tried until none applies.  A rule's
   condition is normalized recursively and must reach the literal [true]. *)
let rec norm sys t =
  match Term.Tbl.find_opt sys.cache t with
  | Some nf -> nf
  | None ->
    let nf =
      match t with
      | Term.Var _ -> t
      | Term.App (o, args) ->
        let t' = Term.App (o, List.map (norm sys) args) in
        let t' =
          if Signature.is_ac o || Signature.is_comm o then Ac.normalize t'
          else t'
        in
        reduce_root sys t'
    in
    Term.Tbl.replace sys.cache t nf;
    nf

and reduce_root sys t =
  match t with
  | Term.Var _ -> t
  | Term.App (o, _) -> (
    match Hashtbl.find_opt sys.index o.Signature.name with
    | None -> t
    | Some candidates -> try_rules sys t candidates)

and try_rules sys t = function
  | [] -> t
  | r :: rest -> (
    let matcher =
      match r.lhs, t with
      | Term.App (po, _), Term.App (so, _)
        when Signature.is_ac po && Signature.op_equal po so ->
        Ac.match_first r.lhs t
      | _ -> Matching.match_ r.lhs t
    in
    match matcher with
    | None -> try_rules sys t rest
    | Some sub -> (
      let fires =
        match r.cond with
        | None -> true
        | Some c -> Term.equal (norm sys (Subst.apply sub c)) Term.tt
      in
      if not fires then try_rules sys t rest
      else begin
        tick sys;
        norm sys (Subst.apply sub r.rhs)
      end))

let normalize sys t =
  sys.budget <- sys.step_limit;
  norm sys t

let pp_rule ppf r =
  match r.cond with
  | None -> Format.fprintf ppf "[%s] %a = %a" r.label Term.pp r.lhs Term.pp r.rhs
  | Some c ->
    Format.fprintf ppf "[%s] %a = %a if %a" r.label Term.pp r.lhs Term.pp r.rhs
      Term.pp c
