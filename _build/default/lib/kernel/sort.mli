(** Sorts of an order-sorted signature.

    CafeOBJ distinguishes {e visible} sorts (abstract data types) from
    {e hidden} sorts (state spaces of abstract machines, Section 2.1 of the
    paper).  A sort is a name tagged with that distinction.  Sorts are
    interned: two sorts with the same name are physically equal, which makes
    comparison cheap throughout the kernel. *)

type t = private {
  name : string;  (** unique sort name, e.g. ["Pms"] or ["Protocol"] *)
  hidden : bool;  (** [true] for state-space sorts declared with [*[ ... ]*] *)
}

(** [visible name] interns the visible sort called [name]. *)
val visible : string -> t

(** [hidden name] interns the hidden sort called [name]. *)
val hidden : string -> t

(** [find name] returns the sort previously interned under [name].
    @raise Not_found if no such sort exists. *)
val find : string -> t

(** [mem name] is [true] iff a sort called [name] has been interned. *)
val mem : string -> bool

(** [equal s1 s2] — physical/name equality of sorts. *)
val equal : t -> t -> bool

(** [compare] orders sorts by name. *)
val compare : t -> t -> int

(** Pretty-printer: prints the sort name, suffixed with [*] when hidden. *)
val pp : Format.formatter -> t -> unit

(** The builtin boolean sort [Bool] (always available, visible). *)
val bool : t

(** [all ()] lists every interned sort, in creation order. *)
val all : unit -> t list
