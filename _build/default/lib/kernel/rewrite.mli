(** Left-to-right term rewriting — the kernel of CafeOBJ's [red] command.

    Equations are oriented left-to-right as rewrite rules (Section 2.1) and
    a term is normalized with a leftmost-innermost strategy.  Conditional
    rules (CafeOBJ's [ceq]) apply only when their condition normalizes to
    [true].

    Systems are immutable; proof passages extend a base system with their
    assumption equations ({!extend}), which mirrors CafeOBJ's
    [open ... close] temporary modules.  Each system carries a memoization
    table and rewrite-step counters used by the benchmarks. *)

type rule = private {
  label : string;
  lhs : Term.t;
  rhs : Term.t;
  cond : Term.t option;  (** [Some c]: rule fires only when [c] reduces to [true] *)
}

(** [rule ?cond ~label lhs rhs] builds a rule.
    @raise Invalid_argument if [lhs] is a variable, if the two sides have
    different sorts, or if [rhs] (or [cond]) contains variables not occurring
    in [lhs]. *)
val rule : ?cond:Term.t -> label:string -> Term.t -> Term.t -> rule

type system

(** [make rules] builds a system; rules are tried in list order. *)
val make : rule list -> system

val rules : system -> rule list

(** [extend sys rules] is a new system with [rules] appended (tried first,
    so passage assumptions take precedence over the base spec — matching
    CafeOBJ, where the innermost module's equations shadow imports). *)
val extend : system -> rule list -> system

(** [normalize sys t] is the normal form of [t].
    @raise Step_limit_exceeded if the step budget is exhausted (a safety
    net against non-terminating rule sets). *)
val normalize : system -> Term.t -> Term.t

exception Step_limit_exceeded

(** [set_step_limit sys n] caps the number of rule applications in a single
    [normalize] call (default [5_000_000]). *)
val set_step_limit : system -> int -> unit

(** [steps sys] is the cumulative number of rule applications performed by
    this system since creation. *)
val steps : system -> int

(** [reset_steps sys] zeroes the counter. *)
val reset_steps : system -> unit

(** [clear_cache sys] drops the memoization table (normal forms remain
    valid; this is only for memory control in long benchmark runs). *)
val clear_cache : system -> unit

val pp_rule : Format.formatter -> rule -> unit
