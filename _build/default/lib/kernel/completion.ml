type failure = {
  reason : string;
  unorientable : (Term.t * Term.t) option;
}

type result =
  | Completed of Rewrite.rule list
  | Failed of failure

(* All subterm occurrences of [t] with their one-hole rebuild functions,
   pre-order (root first). *)
let rec contexts t =
  let here = t, fun x -> x in
  match t with
  | Term.Var _ -> [ here ]
  | Term.App (o, args) ->
    let sub =
      List.concat
        (List.mapi
           (fun i a ->
             List.map
               (fun (s, rebuild) ->
                 ( s,
                   fun x ->
                     Term.App (o, List.mapi (fun j b -> if i = j then rebuild x else b) args) ))
               (contexts a))
           args)
    in
    here :: sub

let rename_apart =
  let counter = ref 0 in
  fun (r : Rewrite.rule) ->
    incr counter;
    let tag = Printf.sprintf "%%kb%d-" !counter in
    let sub =
      Subst.of_list
        (List.map
           (fun (v : Term.var) ->
             v, Term.var (tag ^ v.v_name) v.v_sort)
           (Term.vars r.Rewrite.lhs))
    in
    Rewrite.rule ~label:r.Rewrite.label
      (Subst.apply sub r.Rewrite.lhs)
      (Subst.apply sub r.Rewrite.rhs)

let critical_pairs (r1 : Rewrite.rule) (r2 : Rewrite.rule) =
  let same = Term.equal r1.Rewrite.lhs r2.Rewrite.lhs && Term.equal r1.Rewrite.rhs r2.Rewrite.rhs in
  let r2 = rename_apart r2 in
  List.filter_map
    (fun (s, rebuild) ->
      match s with
      | Term.Var _ -> None
      | Term.App _ ->
        let at_root = Term.equal s r1.Rewrite.lhs in
        if same && at_root then None
        else
          Option.map
            (fun sub ->
              ( Subst.apply sub (rebuild r2.Rewrite.rhs),
                Subst.apply sub r1.Rewrite.rhs ))
            (Matching.unify s r2.Rewrite.lhs))
    (contexts r1.Rewrite.lhs)

let joinable rules t1 t2 =
  let sys = Rewrite.make rules in
  Term.equal (Rewrite.normalize sys t1) (Rewrite.normalize sys t2)

let complete ?(max_rules = 64) ~prec equations =
  let counter = ref 0 in
  let mk_rule lhs rhs =
    incr counter;
    Rewrite.rule ~label:(Printf.sprintf "kb-%d" !counter) lhs rhs
  in
  (* [rules] is kept interreduced lazily: right-hand sides are normalized
     when the rule is created; stale rules still rewrite correctly, they
     are merely redundant. *)
  let rec go rules agenda =
    match agenda with
    | [] -> Completed rules
    | (t1, t2) :: agenda -> (
      let sys = Rewrite.make rules in
      let n1 = Rewrite.normalize sys t1 and n2 = Rewrite.normalize sys t2 in
      if Term.equal n1 n2 then go rules agenda
      else if List.length rules >= max_rules then
        Failed { reason = "rule limit exceeded"; unorientable = None }
      else
        match Order.orients ~prec (n1, n2) with
        | `No ->
          Failed { reason = "unorientable equation"; unorientable = Some (n1, n2) }
        | (`Lr | `Rl) as dir ->
          let lhs, rhs = match dir with `Lr -> n1, n2 | `Rl -> n2, n1 in
          let rule = mk_rule lhs rhs in
          (* Interreduce: any existing rule whose left-hand side the new
             rule rewrites is dropped and its equation requeued — it will
             come back simplified or join away. *)
          let newsys = Rewrite.make [ rule ] in
          let kept, requeued =
            List.partition
              (fun (r : Rewrite.rule) ->
                Term.equal (Rewrite.normalize newsys r.Rewrite.lhs) r.Rewrite.lhs)
              rules
          in
          let requeued =
            List.map (fun (r : Rewrite.rule) -> r.Rewrite.lhs, r.Rewrite.rhs) requeued
          in
          let fresh_pairs =
            List.concat_map
              (fun r -> critical_pairs rule r @ critical_pairs r rule)
              (rule :: kept)
          in
          go (kept @ [ rule ]) (agenda @ requeued @ fresh_pairs))
  in
  go [] equations
