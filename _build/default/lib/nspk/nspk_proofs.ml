open Kernel
open Core
module M = Nspk_model
module D = Tls.Data

type proof = {
  name : string;
  invariant : Induction.invariant;
  hints : Induction.hint list;
}

let build variant =
  let nw s = M.nw variant s in
  let not_intruder t = Term.not_ (Term.eq t D.intruder) in
  let inv name params body : Induction.invariant =
    { inv_name = name; inv_params = params; inv_body = body }
  in

  (* Ties between a ciphertext's fields and the structure of the nonce it
     carries.  [owner_tie] says the claimed sender really owns the nonce;
     [peer_tie] says the encryption key is the nonce's intended peer's. *)
  let e1_ties e =
    Term.and_
      (Term.eq (M.e1_prin e) (M.nonce_owner (M.e1_nonce e)))
      (Term.eq (M.e1_key e) (D.pk_ (M.nonce_peer (M.e1_nonce e))))
  in
  let e2_n1_tie e =
    (* The first nonce of a message 2 belongs to the key's owner: honest
       responders echo the initiator's nonce back to it. *)
    Term.eq (D.pk_ (M.nonce_owner (M.e2_n1 e))) (M.e2_key e)
  in
  let e2_n2_tie e =
    let peer = Term.eq (D.pk_ (M.nonce_peer (M.e2_n2 e))) (M.e2_key e) in
    match variant with
    | M.Classic -> peer
    | M.Lowe_fixed ->
      (* Lowe's fix: the named responder owns the fresh nonce. *)
      Term.and_ (Term.eq (M.nonce_owner (M.e2_n2 e)) (M.e2_prin e)) peer
  in
  let e3_tie e =
    Term.eq (D.pk_ (M.nonce_owner (M.e3_nonce e))) (M.e3_key e)
  in

  let m1_origin =
    inv "m1-origin"
      [ "M", M.nmsg ]
      (fun s args ->
        match args with
        | [ m ] ->
          let e = M.payload1 m in
          Term.implies
            (Term.and_ (M.nmsg_in m (nw s)) (M.is_m1 m))
            (Term.or_ (M.in_cn (M.e1_nonce e) (nw s)) (e1_ties e))
        | _ -> assert false)
  in
  let ce1_origin =
    inv "ce1-origin"
      [ "E", M.nenc1 ]
      (fun s args ->
        match args with
        | [ e ] ->
          Term.implies
            (M.in_ce1 e (nw s))
            (Term.or_ (M.in_cn (M.e1_nonce e) (nw s)) (e1_ties e))
        | _ -> assert false)
  in
  (* The two nonce clauses of the message-2 origin lemma are proved as
     separate invariants: together they double the atom space of every
     case and slow the splitting exponentially. *)
  let m2_origin_clause suffix tie =
    inv ("m2-origin-" ^ suffix)
      [ "M", M.nmsg ]
      (fun s args ->
        match args with
        | [ m ] ->
          let e = M.payload2 m in
          let nonce = if suffix = "n1" then M.e2_n1 e else M.e2_n2 e in
          Term.implies
            (Term.and_ (M.nmsg_in m (nw s)) (M.is_m2 m))
            (Term.or_ (M.in_cn nonce (nw s)) (tie e))
        | _ -> assert false)
  in
  let m2_origin_n1 = m2_origin_clause "n1" e2_n1_tie in
  let m2_origin_n2 = m2_origin_clause "n2" e2_n2_tie in
  let ce2_origin_clause suffix tie =
    inv ("ce2-origin-" ^ suffix)
      [ "E", M.nenc2 ]
      (fun s args ->
        match args with
        | [ e ] ->
          let nonce = if suffix = "n1" then M.e2_n1 e else M.e2_n2 e in
          Term.implies
            (M.in_ce2 e (nw s))
            (Term.or_ (M.in_cn nonce (nw s)) (tie e))
        | _ -> assert false)
  in
  let ce2_origin_n1 = ce2_origin_clause "n1" e2_n1_tie in
  let ce2_origin_n2 = ce2_origin_clause "n2" e2_n2_tie in
  let ce3_origin =
    inv "ce3-origin"
      [ "E", M.nenc3 ]
      (fun s args ->
        match args with
        | [ e ] ->
          Term.implies
            (M.in_ce3 e (nw s))
            (Term.or_ (M.in_cn (M.e3_nonce e) (nw s)) (e3_tie e))
        | _ -> assert false)
  in
  let secrecy =
    inv "nonce-secrecy"
      [ "N", M.nonce ]
      (fun s args ->
        match args with
        | [ n ] ->
          Term.implies
            (M.in_cn n (nw s))
            (Term.or_
               (Term.eq (M.nonce_owner n) D.intruder)
               (Term.eq (M.nonce_peer n) D.intruder))
        | _ -> assert false)
  in
  ignore not_intruder;

  let suffix = match variant with M.Classic -> "-c" | M.Lowe_fixed -> "-l" in
  let hint action lemma args_of =
    {
      Induction.hint_action = action ^ suffix;
      hint_instances =
        (fun s ~inv_args:_ ~act_args ->
          match args_of act_args with
          | Some arg -> [ lemma.Induction.inv_body s [ arg ] ]
          | None -> []);
    }
  in
  let last_arg args = Some (List.nth args (List.length args - 1)) in
  let m1_of args = match args with [ _; _; m1 ] -> Some m1 | _ -> None in
  let m2_of args = match args with [ _; _; m2 ] -> Some m2 | _ -> None in

  let replay_hints =
    [
      hint "fakeM1r" ce1_origin last_arg;
      hint "fakeM2r" ce2_origin_n1 last_arg;
      hint "fakeM2r" ce2_origin_n2 last_arg;
      hint "fakeM3r" ce3_origin last_arg;
    ]
  in
  let m1_origin_hints = [ hint "fakeM1r" ce1_origin last_arg ] in
  let respond_hint =
    (* respond builds message 2 from a received message 1. *)
    hint "respond" m1_origin m1_of
  in
  let ce3_hints = [ hint "finishInit" m2_origin_n2 m2_of ] in
  let secrecy_hints =
    replay_hints
    @ [ respond_hint; hint "finishInit" m2_origin_n2 m2_of ]
  in
  [
    { name = "m1-origin"; invariant = m1_origin; hints = m1_origin_hints };
    { name = "ce1-origin"; invariant = ce1_origin; hints = [ hint "fakeM1r" ce1_origin last_arg ] };
    { name = "m2-origin-n1"; invariant = m2_origin_n1;
      hints = [ respond_hint; hint "fakeM2r" ce2_origin_n1 last_arg ] };
    { name = "m2-origin-n2"; invariant = m2_origin_n2;
      hints = [ respond_hint; hint "fakeM2r" ce2_origin_n2 last_arg ] };
    { name = "ce2-origin-n1"; invariant = ce2_origin_n1;
      hints = [ respond_hint; hint "fakeM2r" ce2_origin_n1 last_arg ] };
    { name = "ce2-origin-n2"; invariant = ce2_origin_n2;
      hints = [ respond_hint; hint "fakeM2r" ce2_origin_n2 last_arg ] };
  ]
  @ (match variant with
    | M.Classic -> []
    | M.Lowe_fixed ->
      [ { name = "ce3-origin"; invariant = ce3_origin; hints = ce3_hints @ [ hint "fakeM3r" ce3_origin last_arg ] } ])
  @ [ { name = "nonce-secrecy"; invariant = secrecy; hints = secrecy_hints } ]

let classic = lazy (build M.Classic)
let fixed = lazy (build M.Lowe_fixed)

let campaign = function
  | M.Classic -> Lazy.force classic
  | M.Lowe_fixed -> Lazy.force fixed

let find variant name =
  List.find (fun p -> String.equal p.name name) (campaign variant)

let run ?config ?env variant proof =
  let env = match env with Some e -> e | None -> M.proof_env variant in
  Induction.prove_invariant ?config env ~hints:proof.hints proof.invariant
