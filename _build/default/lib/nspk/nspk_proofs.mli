(** Symbolic verification of NSPK / NSL nonce secrecy, mirroring the
    paper's inv1 campaign for TLS.

    For [Lowe_fixed] (NSL) the whole campaign is proved; for [Classic]
    NSPK the secrecy invariant is {e refuted}, and the refuting transition
    is [finishInit] — the initiator returning the responder's nonce to an
    unauthenticated peer, which is exactly where Lowe's man-in-the-middle
    lives. *)

open Core

(** Names: ["m1-origin"], ["ce1-origin"], ["m2-origin-n1"/"-n2"],
    ["ce2-origin-n1"/"-n2"], ["ce3-origin"] (NSL only),
    ["nonce-secrecy"]. *)
type proof = { name : string; invariant : Induction.invariant; hints : Induction.hint list }

(** [campaign variant] — the lemmas in dependency order, secrecy last. *)
val campaign : Nspk_model.variant -> proof list

val find : Nspk_model.variant -> string -> proof

(** [run ?config variant proof] executes one proof in a fresh environment
    (or pass [env] to share one). *)
val run :
  ?config:Prover.config ->
  ?env:Induction.env ->
  Nspk_model.variant ->
  proof ->
  Induction.result
