lib/nspk/nspk_model.ml: Cafeobj Core Induction Kernel Lazy List Option Ots Printf Signature Sort Specgen Term Tls
