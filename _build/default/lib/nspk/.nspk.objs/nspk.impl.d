lib/nspk/nspk.ml: Buffer Cafeobj Dolevyao Format Kernel Lazy List Mc Nspk_model Nspk_proofs Printf Signature String Term Tls
