lib/nspk/nspk_proofs.ml: Core Induction Kernel Lazy List Nspk_model String Term Tls
