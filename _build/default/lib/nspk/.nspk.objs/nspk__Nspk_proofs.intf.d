lib/nspk/nspk_proofs.mli: Core Induction Nspk_model Prover
