lib/nspk/nspk.mli: Format Kernel Mc Nspk_model Nspk_proofs Term
