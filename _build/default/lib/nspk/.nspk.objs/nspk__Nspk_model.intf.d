lib/nspk/nspk_model.mli: Cafeobj Core Induction Kernel Ots Sort Term
