open Kernel
open Core
module D = Tls.Data

type variant = Classic | Lowe_fixed
module Spec = Cafeobj.Spec
module Datatype = Cafeobj.Datatype

(* ------------------------------------------------------------------ *)
(* Data *)

let spec = Spec.create ~imports:[ D.spec ] "NSPK-SYM"
let nonce = Spec.declare_sort spec "Nonce"
let nseed = Spec.declare_sort spec "NSeed"
let nenc1 = Spec.declare_sort spec "SNEnc1"
let nenc2 = Spec.declare_sort spec "SNEnc2"
let nenc3 = Spec.declare_sort spec "SNEnc3"
let nmsg = Spec.declare_sort spec "SNMsg"
let nnet = Spec.declare_sort spec "NNet"
let useed = Spec.declare_sort spec "USeed"

let nonce_op =
  Datatype.declare_ctor spec ~sort:nonce "nonce"
    [ "nonce-owner", D.prin; "nonce-peer", D.prin; "nonce-seed", nseed ]

let enc1_op =
  Datatype.declare_ctor spec ~sort:nenc1 "senc1"
    [ "e1-key", D.pub_key; "e1-nonce", nonce; "e1-prin", D.prin ]

let enc2_op =
  Datatype.declare_ctor spec ~sort:nenc2 "senc2"
    [
      "e2-key", D.pub_key; "e2-n1", nonce; "e2-n2", nonce; "e2-prin", D.prin;
    ]

let enc3_op =
  Datatype.declare_ctor spec ~sort:nenc3 "senc3"
    [ "e3-key", D.pub_key; "e3-nonce", nonce ]

let hdr = [ "ncrt", D.prin; "nsrc", D.prin; "ndst", D.prin ]
let m1_op = Datatype.declare_ctor spec ~sort:nmsg "sm1" (hdr @ [ "pl1", nenc1 ])
let m2_op = Datatype.declare_ctor spec ~sort:nmsg "sm2" (hdr @ [ "pl2", nenc2 ])
let m3_op = Datatype.declare_ctor spec ~sort:nmsg "sm3" (hdr @ [ "pl3", nenc3 ])
let nvoid_op = Datatype.declare_ctor spec ~sort:nnet "nvoid" []

let nadd_op =
  Datatype.declare_ctor spec ~sort:nnet "nadd" [ "nhead", nmsg; "ntail", nnet ]

let useed_nil_op = Datatype.declare_ctor spec ~sort:useed "unil" []

let useed_add_op =
  Datatype.declare_ctor spec ~sort:useed "uadd" [ "uhead", nseed; "utail", useed ]

let () =
  List.iter (Datatype.finalize_sort spec) [ nonce; nenc1; nenc2; nenc3; nmsg ];
  List.iter
    (fun srt ->
      Spec.add_rule spec (List.hd (Datatype.equality_rules_for ~ctors:[] srt)))
    [ nseed; nnet; useed ]

let nonce_ ~owner ~peer seed = Term.app nonce_op [ owner; peer; seed ]
let enc1_ k n p = Term.app enc1_op [ k; n; p ]
let enc2_ k n1 n2 r = Term.app enc2_op [ k; n1; n2; r ]
let enc3_ k n = Term.app enc3_op [ k; n ]
let m1_ ~crt ~src ~dst e = Term.app m1_op [ crt; src; dst; e ]
let m2_ ~crt ~src ~dst e = Term.app m2_op [ crt; src; dst; e ]
let m3_ ~crt ~src ~dst e = Term.app m3_op [ crt; src; dst; e ]
let proj name t = Term.app (Option.get (Spec.find_op spec name)) [ t ]
let nonce_owner t = proj "nonce-owner" t
let nonce_peer t = proj "nonce-peer" t
let e1_key t = proj "e1-key" t
let e1_nonce t = proj "e1-nonce" t
let e1_prin t = proj "e1-prin" t
let e2_key t = proj "e2-key" t
let e2_n1 t = proj "e2-n1" t
let e2_n2 t = proj "e2-n2" t
let e2_prin t = proj "e2-prin" t
let e3_key t = proj "e3-key" t
let e3_nonce t = proj "e3-nonce" t
let is_m1 t = proj "sm1?" t
let is_m2 t = proj "sm2?" t
let is_m3 t = proj "sm3?" t
let payload1 t = proj "pl1" t
let payload2 t = proj "pl2" t
let payload3 t = proj "pl3" t

(* Membership and gleaning (same construction as Tls.Data). *)
let declare_membership name elem container ~empty ~cons_op =
  let op = Spec.declare_op spec name [ elem; container ] Sort.bool ~attrs:[] in
  let x = Term.var "X" elem in
  let y = Term.var "Y" elem in
  let tail = Term.var "TAIL" container in
  Spec.add_eq spec ~label:(name ^ "-empty") (Term.app op [ x; empty ]) Term.ff;
  Spec.add_eq spec ~label:(name ^ "-cons")
    (Term.app op [ x; Term.app cons_op [ y; tail ] ])
    (Term.or_ (Term.eq x y) (Term.app op [ x; tail ]));
  op

let nmsg_in_op =
  declare_membership "nmsg-in" nmsg nnet ~empty:(Term.const nvoid_op)
    ~cons_op:nadd_op

let seed_in_op =
  declare_membership "seed-in" nseed useed ~empty:(Term.const useed_nil_op)
    ~cons_op:useed_add_op

let nmsg_in m n = Term.app nmsg_in_op [ m; n ]
let seed_in s u = Term.app seed_in_op [ s; u ]

let msg_ctors = [ m1_op; m2_op; m3_op ]

let ctor_vars (op : Signature.op) =
  List.mapi (fun i srt -> Term.var (Printf.sprintf "A%d" i) srt) op.Signature.arity

let declare_collection name elem ~void_case ~glean =
  let op = Spec.declare_op spec name [ elem; nnet ] Sort.bool ~attrs:[] in
  let x = Term.var "X" elem in
  let tail = Term.var "TAIL" nnet in
  Spec.add_eq spec ~label:(name ^ "-void")
    (Term.app op [ x; Term.const nvoid_op ])
    (void_case x);
  List.iter
    (fun mc ->
      let vars = ctor_vars mc in
      let m = Term.app mc vars in
      let rest = Term.app op [ x; tail ] in
      let rhs =
        match glean mc x vars with
        | None -> rest
        | Some found -> Term.or_ found rest
      in
      Spec.add_eq spec
        ~label:(Printf.sprintf "%s-%s" name mc.Signature.name)
        (Term.app op [ x; Term.app nadd_op [ m; tail ] ])
        rhs)
    msg_ctors;
  op

let payload_of vars = List.nth vars 3
let under_intruder_key key = Term.eq key (D.pk_ D.intruder)

(* Gleanable nonces: the intruder's own nonces always; otherwise the
   contents of ciphertexts under its public key. *)
let in_cn_op =
  declare_collection "in-cn" nonce
    ~void_case:(fun x -> Term.eq (nonce_owner x) D.intruder)
    ~glean:(fun mc x vars ->
      let e = payload_of vars in
      if Signature.op_equal mc m1_op then
        Some (Term.and_ (under_intruder_key (e1_key e)) (Term.eq x (e1_nonce e)))
      else if Signature.op_equal mc m2_op then
        Some
          (Term.and_
             (under_intruder_key (e2_key e))
             (Term.or_ (Term.eq x (e2_n1 e)) (Term.eq x (e2_n2 e))))
      else
        Some (Term.and_ (under_intruder_key (e3_key e)) (Term.eq x (e3_nonce e))))

let simple_collection name elem selector =
  declare_collection name elem
    ~void_case:(fun _ -> Term.ff)
    ~glean:(fun mc x vars ->
      if Signature.op_equal mc selector then
        Some (Term.eq x (payload_of vars))
      else None)

let in_ce1_op = simple_collection "in-ce1" nenc1 m1_op
let in_ce2_op = simple_collection "in-ce2" nenc2 m2_op
let in_ce3_op = simple_collection "in-ce3" nenc3 m3_op
let in_cn x n = Term.app in_cn_op [ x; n ]
let in_ce1 x n = Term.app in_ce1_op [ x; n ]
let in_ce2 x n = Term.app in_ce2_op [ x; n ]
let in_ce3 x n = Term.app in_ce3_op [ x; n ]

(* ------------------------------------------------------------------ *)
(* The transition systems *)

let nproto = Sort.hidden "NProto"

let make variant =
  let sg = Signature.create () in
  let suffix = match variant with Classic -> "c" | Lowe_fixed -> "l" in
  let decl name arity sort =
    Signature.declare sg (name ^ "-" ^ suffix) arity sort ~attrs:[]
  in
  let nw_op = decl "nnw" [ nproto ] nnet in
  let usd_op = decl "nusd" [ nproto ] useed in
  let init_op = decl "ninit" [] nproto in
  let nw_obs : Ots.observer =
    { obs_op = nw_op; obs_params = []; obs_result = nnet }
  in
  let usd_obs : Ots.observer =
    { obs_op = usd_op; obs_params = []; obs_result = useed }
  in
  let sv = Term.var "S" nproto in
  let nw_ = Term.app nw_op [ sv ] in
  let usd_ = Term.app usd_op [ sv ] in
  let send m : Ots.effect_ =
    { eff_observer = nw_obs; eff_value = Term.app nadd_op [ m; nw_ ] }
  in
  let use_seed x : Ots.effect_ =
    { eff_observer = usd_obs; eff_value = Term.app useed_add_op [ x; usd_ ] }
  in
  let actions = ref [] in
  let act name params cond effects =
    let op = decl name (nproto :: List.map snd params) nproto in
    actions :=
      { Ots.act_op = op; act_params = params; act_cond = cond; act_effects = effects }
      :: !actions
  in
  let a = Term.var "A" D.prin in
  let b = Term.var "B" D.prin in
  let sd = Term.var "SD" nseed in
  let m1 = Term.var "M1" nmsg in
  let m2 = Term.var "M2" nmsg in
  let n = Term.var "N" nonce in
  let n2 = Term.var "N2" nonce in
  let e1 = Term.var "E" nenc1 in
  let e2 = Term.var "E" nenc2 in
  let e3 = Term.var "E" nenc3 in
  let in_nw m = nmsg_in m nw_ in
  let fresh_seed = Term.not_ (seed_in sd usd_) in
  let name_field resp = match variant with
    | Classic -> D.ca  (* "absent" *)
    | Lowe_fixed -> resp
  in

  (* A starts a run with B. *)
  act "start"
    [ "A", D.prin; "B", D.prin; "SD", nseed ]
    fresh_seed
    [
      send
        (m1_ ~crt:a ~src:a ~dst:b
           (enc1_ (D.pk_ b) (nonce_ ~owner:a ~peer:b sd) a));
      use_seed sd;
    ];

  (* B answers a message 1 addressed to (and readable by) it. *)
  let pl1 = payload1 m1 in
  act "respond"
    [ "B", D.prin; "SD", nseed; "M1", nmsg ]
    (Term.conj
       [
         in_nw m1;
         is_m1 m1;
         Term.eq (proj "ndst" m1) b;
         Term.eq (e1_key pl1) (D.pk_ b);
         fresh_seed;
       ])
    [
      send
        (m2_ ~crt:b ~src:b ~dst:(e1_prin pl1)
           (enc2_
              (D.pk_ (e1_prin pl1))
              (e1_nonce pl1)
              (nonce_ ~owner:b ~peer:(e1_prin pl1) sd)
              (name_field b)));
      use_seed sd;
    ];

  (* A, having started a run (its own message 1), accepts a matching
     message 2 and finishes.  In the Lowe-fixed variant A checks the
     responder name. *)
  let pl2 = payload2 m2 in
  let peer = proj "ndst" m1 in
  act "finishInit"
    [ "A", D.prin; "M1", nmsg; "M2", nmsg ]
    (Term.conj
       ([
          in_nw m1;
          is_m1 m1;
          Term.eq (proj "ncrt" m1) a;
          Term.eq (proj "nsrc" m1) a;
          in_nw m2;
          is_m2 m2;
          Term.eq (proj "ndst" m2) a;
          Term.eq (proj "nsrc" m2) peer;
          Term.eq (e2_key pl2) (D.pk_ a);
          Term.eq (e2_n1 pl2) (e1_nonce (payload1 m1));
        ]
       @
       match variant with
       | Classic -> []
       | Lowe_fixed -> [ Term.eq (e2_prin pl2) peer ]))
    [ send (m3_ ~crt:a ~src:a ~dst:peer (enc3_ (D.pk_ peer) (e2_n2 pl2))) ];

  (* The intruder: construct from gleanable nonces, or replay gleaned
     ciphertexts, with arbitrary headers. *)
  act "fakeM1c"
    [ "A", D.prin; "B", D.prin; "N", nonce ]
    (in_cn n nw_)
    [ send (m1_ ~crt:D.intruder ~src:a ~dst:b (enc1_ (D.pk_ b) n a)) ];
  act "fakeM1r"
    [ "A", D.prin; "B", D.prin; "E", nenc1 ]
    (in_ce1 e1 nw_)
    [ send (m1_ ~crt:D.intruder ~src:a ~dst:b e1) ];
  act "fakeM2c"
    [ "B", D.prin; "A", D.prin; "N", nonce; "N2", nonce; "R", D.prin ]
    (Term.and_ (in_cn n nw_) (in_cn n2 nw_))
    [
      send
        (m2_ ~crt:D.intruder ~src:b ~dst:a
           (enc2_ (D.pk_ a) n n2 (Term.var "R" D.prin)));
    ];
  act "fakeM2r"
    [ "B", D.prin; "A", D.prin; "E", nenc2 ]
    (in_ce2 e2 nw_)
    [ send (m2_ ~crt:D.intruder ~src:b ~dst:a e2) ];
  act "fakeM3c"
    [ "A", D.prin; "B", D.prin; "N", nonce ]
    (in_cn n nw_)
    [ send (m3_ ~crt:D.intruder ~src:a ~dst:b (enc3_ (D.pk_ b) n)) ];
  act "fakeM3r"
    [ "A", D.prin; "B", D.prin; "E", nenc3 ]
    (in_ce3 e3 nw_)
    [ send (m3_ ~crt:D.intruder ~src:a ~dst:b e3) ];

  {
    Ots.ots_name =
      (match variant with Classic -> "NSPK" | Lowe_fixed -> "NSL");
    hidden = nproto;
    init = init_op;
    observers = [ nw_obs; usd_obs ];
    actions = List.rev !actions;
    init_equations =
      [
        Term.app nw_op [ Term.const init_op ], Term.const nvoid_op;
        Term.app usd_op [ Term.const init_op ], Term.const useed_nil_op;
      ];
  }

let classic = lazy (make Classic)
let fixed = lazy (make Lowe_fixed)

let ots = function
  | Classic -> Lazy.force classic
  | Lowe_fixed -> Lazy.force fixed

let spec_classic = lazy (Specgen.generate ~data:spec (ots Classic))
let spec_fixed = lazy (Specgen.generate ~data:spec (ots Lowe_fixed))

let gen_spec = function
  | Classic -> Lazy.force spec_classic
  | Lowe_fixed -> Lazy.force spec_fixed

let proof_env variant =
  Induction.make_env ~spec:(gen_spec variant) ~ots:(ots variant) ()

let observe i variant state =
  let o = ots variant in
  Ots.obs o (List.nth o.Ots.observers i).Ots.obs_op.Signature.name [] state

let nw variant state = observe 0 variant state
let usd variant state = observe 1 variant state
