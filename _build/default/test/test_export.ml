(* Tests of the specification exporter: the regenerated CafeOBJ text must
   parse back and reproduce the same rewrite relation. *)

open Kernel
module Spec = Cafeobj.Spec

let term_testable = Alcotest.testable Term.pp Term.equal

let nat_spec =
  lazy
    (let m = Spec.create "XP-NAT" in
     let nat = Spec.declare_sort m "XpNat" in
     let zero = Spec.declare_op m "xp0" [] nat ~attrs:[ Signature.Ctor ] in
     let succ = Spec.declare_op m "xpS" [ nat ] nat ~attrs:[ Signature.Ctor ] in
     let plus = Spec.declare_op m "xpplus" [ nat; nat ] nat ~attrs:[] in
     let x = Term.var "X" nat and y = Term.var "Y" nat in
     Spec.add_eq m ~label:"xp-plus-0"
       (Term.app plus [ Term.const zero; y ])
       y;
     Spec.add_eq m ~label:"xp-plus-s"
       (Term.app plus [ Term.app succ [ x ]; y ])
       (Term.app succ [ Term.app plus [ x; y ] ]);
     m, zero, succ, plus)

let test_term_printing () =
  let _, zero, succ, _ = Lazy.force nat_spec in
  Alcotest.(check string) "app" "xpS(xp0)"
    (Cafeobj.Export.term_to_source (Term.app succ [ Term.const zero ]));
  Alcotest.(check string) "eq/infix"
    "((xp0 == xp0) and true)"
    (Cafeobj.Export.term_to_source
       (Term.and_ (Term.eq (Term.const zero) (Term.const zero)) Term.tt))

let test_roundtrip_nat () =
  let m, zero, succ, plus = Lazy.force nat_spec in
  let m' = Cafeobj.Export.roundtrip m in
  let rec n k = if k = 0 then Term.const zero else Term.app succ [ n (k - 1) ] in
  let probe = Term.app plus [ n 2; n 3 ] in
  Alcotest.check term_testable "2+3 in reconstructed module" (n 5)
    (Spec.reduce m' probe);
  Alcotest.check term_testable "agrees with original" (Spec.reduce m probe)
    (Spec.reduce m' probe)

let test_roundtrip_preserves_free_datatype () =
  let m, zero, succ, _ = Lazy.force nat_spec in
  ignore m;
  let m' = Cafeobj.Export.roundtrip m in
  let one = Term.app succ [ Term.const zero ] in
  Alcotest.check term_testable "no confusion survives" Term.ff
    (Spec.reduce m' (Term.eq one (Term.const zero)));
  Alcotest.check term_testable "recognizers survive" Term.tt
    (Spec.reduce m'
       (Term.app (Option.get (Spec.find_op m' "xpS?")) [ one ]))

let test_tls_export_is_wellformed () =
  let src = Cafeobj.Export.to_source (Tls.Model.spec Tls.Model.Original) in
  Alcotest.(check bool) "substantial" true (String.length src > 50_000);
  (* The paper's key declarations are all present. *)
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and sl = String.length src in
        let rec go i = i + nl <= sl && (String.sub src i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true found)
    [
      "op nw : Protocol -> Network";
      "op ss : Protocol Prin Prin Sid -> Session";
      "op chello : Protocol Prin Prin Rand ListOfChoices -> Protocol";
      "op fakeSf2 : Protocol";
      "op in-cpms : Pms Network -> Bool";
      "*[ Protocol ]*";
    ]

let test_tls_export_roundtrip_reduces () =
  (* Full roundtrip of the protocol theory: evaluate the 140 kB export and
     replay a ClientHello observation inside a proof passage. *)
  let env = Cafeobj.Eval.create () in
  ignore
    (Cafeobj.Eval.eval_string env
       (Cafeobj.Export.to_source (Tls.Model.spec Tls.Model.Original)));
  let r =
    Cafeobj.Eval.reduce_string env
      {|open TLS-OTS
        op xa : -> Prin { ctor } .
        op xb : -> Prin { ctor } .
        op xr : -> Rand { ctor } .
        op xc : -> Choice { ctor } .
        red msg-in(ch(xa, xa, xb, xr, lcons(xc, lnil)),
                   nw(chello(tls-init, xa, xb, xr, lcons(xc, lnil)))) .
        close|}
  in
  Alcotest.(check string) "chello observed through the export" "true"
    (Term.to_string r.Cafeobj.Eval.normal_form)

let tests =
  [
    "term printing", `Quick, test_term_printing;
    "roundtrip nat", `Quick, test_roundtrip_nat;
    "roundtrip free datatype", `Quick, test_roundtrip_preserves_free_datatype;
    "tls export well-formed", `Quick, test_tls_export_is_wellformed;
    "tls export roundtrip", `Quick, test_tls_export_roundtrip_reduces;
  ]

let suite = "export", tests
