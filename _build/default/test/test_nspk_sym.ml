(* Tests of the symbolic NSPK/NSL treatment: the OTS models, the proved NSL
   campaign, and the refutation of classic NSPK's nonce secrecy at the
   transition where Lowe's attack lives. *)

open Core
module M = Nspk.Symbolic
module P = Nspk.Symbolic_proofs

let is_proved (r : Induction.result) = r.Induction.proved

let test_models_well_formed () =
  Ots.check (M.ots M.Classic);
  Ots.check (M.ots M.Lowe_fixed);
  Alcotest.(check int) "9 transitions" 9
    (List.length (M.ots M.Classic).Ots.actions)

let test_nsl_campaign_proved () =
  let env = M.proof_env M.Lowe_fixed in
  let results =
    List.map (P.run ~env M.Lowe_fixed) (P.campaign M.Lowe_fixed)
  in
  Alcotest.(check int) "eight invariants" 8 (List.length results);
  List.iter
    (fun (r : Induction.result) ->
      Alcotest.(check bool) (r.Induction.res_invariant ^ " proved") true
        (is_proved r))
    results

let test_classic_secrecy_refuted_at_finish () =
  let env = M.proof_env M.Classic in
  let r = P.run ~env M.Classic (P.find M.Classic "nonce-secrecy") in
  Alcotest.(check bool) "not proved" false (is_proved r);
  let refuting =
    List.filter_map
      (fun (c : Induction.case_result) ->
        match c.Induction.outcome with
        | Prover.Refuted _ -> Some c.Induction.case_name
        | _ -> None)
      r.Induction.cases
  in
  (* Lowe's flaw: the initiator forwards the responder's nonce to an
     unauthenticated peer in message 3. *)
  Alcotest.(check (list string)) "refuted exactly at finishInit"
    [ "finishInit-c" ] refuting

let test_classic_lemmas_still_hold () =
  (* The origin lemmas that do not depend on the responder name survive in
     the classic protocol; only secrecy falls. *)
  let env = M.proof_env M.Classic in
  List.iter
    (fun name ->
      let r = P.run ~env M.Classic (P.find M.Classic name) in
      Alcotest.(check bool) (name ^ " proved") true (is_proved r))
    [ "m1-origin"; "ce1-origin"; "m2-origin-n1"; "m2-origin-n2";
      "ce2-origin-n1"; "ce2-origin-n2" ]

let test_campaign_sizes () =
  Alcotest.(check int) "NSL has the ce3 lemma" 8
    (List.length (P.campaign M.Lowe_fixed));
  Alcotest.(check int) "classic drops it" 7
    (List.length (P.campaign M.Classic))

let tests =
  [
    "models well-formed", `Quick, test_models_well_formed;
    "NSL campaign proved", `Quick, test_nsl_campaign_proved;
    "classic secrecy refuted at finishInit", `Quick,
    test_classic_secrecy_refuted_at_finish;
    "classic lemmas still hold", `Quick, test_classic_lemmas_still_hold;
    "campaign sizes", `Quick, test_campaign_sizes;
  ]

let suite = "nspk-symbolic", tests
