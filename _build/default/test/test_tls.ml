(* Tests of the abstract TLS handshake model: concrete executions of the
   Figure-2 protocol, session resumption, and the two Section-5.3 attack
   runs, all evaluated with the rewriting engine. *)

open Kernel
open Core
open Tls
module D = Data

let c = Scenario.cast
let hm = Scenario.honest_messages

let check_effective run =
  match Scenario.effective run with
  | [] -> ()
  | dead ->
    Alcotest.failf "%s: non-effective steps: %s" run.Scenario.run_name
      (String.concat ", " dead)

let in_final run m = Scenario.holds run (D.msg_in m (Model.nw run.Scenario.ots (Scenario.final run)))

(* ------------------------------------------------------------------ *)

let test_ots_well_formed () =
  Ots.check (Model.ots ());
  Ots.check (Model.variant_ots ());
  Alcotest.(check int) "27 actions" 27 (List.length (Model.ots ()).Ots.actions);
  Alcotest.(check int) "5 observers" 5
    (List.length (Model.ots ()).Ots.observers)

let test_full_handshake_runs () =
  let run = Scenario.full_handshake () in
  check_effective run;
  List.iter
    (fun m -> Alcotest.(check bool) "message sent" true (in_final run m))
    [ hm.ch_msg; hm.sh_msg; hm.ct_msg; hm.kx_msg; hm.cf_msg; hm.sf_msg ]

let test_full_handshake_sessions () =
  let run = Scenario.full_handshake () in
  let s = Scenario.final run in
  let o = run.Scenario.ots in
  let expected = D.st_ c.suite1 c.ra c.rb (D.pms_ ~client:c.alice ~server:c.bob c.sec1) in
  Alcotest.(check bool) "alice's session" true
    (Scenario.holds run
       (Term.eq (Model.ss o s ~owner:c.alice ~peer:c.bob ~sid:c.sid1) expected));
  Alcotest.(check bool) "bob's session" true
    (Scenario.holds run
       (Term.eq (Model.ss o s ~owner:c.bob ~peer:c.alice ~sid:c.sid1) expected));
  Alcotest.(check bool) "no session for intruder" true
    (Scenario.holds run
       (Term.eq
          (Model.ss o s ~owner:c.alice ~peer:D.intruder ~sid:c.sid1)
          D.no_session))

let test_pms_not_leaked_in_honest_run () =
  let run = Scenario.full_handshake () in
  let nw = Model.nw run.Scenario.ots (Scenario.final run) in
  Alcotest.(check bool) "honest pms not gleanable" true
    (Scenario.holds run
       (Term.not_ (D.in_cpms (D.pms_ ~client:c.alice ~server:c.bob c.sec1) nw)));
  Alcotest.(check bool) "intruder pms gleanable" true
    (Scenario.holds run
       (D.in_cpms (D.pms_ ~client:D.intruder ~server:c.bob c.sec2) nw))

let test_gleaning_collections () =
  let run = Scenario.full_handshake () in
  let nw = Model.nw run.Scenario.ots (Scenario.final run) in
  Alcotest.(check bool) "bob's cert signature gleaned" true
    (Scenario.holds run
       (D.in_csig (D.sig_of ~signer:D.ca ~subject:c.bob (D.pk_ c.bob)) nw));
  Alcotest.(check bool) "intruder's own signature always gleanable" true
    (Scenario.holds run
       (D.in_csig (D.sig_of ~signer:D.ca ~subject:D.intruder (D.pk_ D.intruder)) nw));
  Alcotest.(check bool) "encrypted pms ciphertext gleaned" true
    (Scenario.holds run
       (D.in_cepms
          (D.epms_ (D.pk_ c.bob) (D.pms_ ~client:c.alice ~server:c.bob c.sec1))
          nw));
  Alcotest.(check bool) "alice's finished ciphertext gleaned" true
    (Scenario.holds run
       (D.in_cecfin
          (D.ecfin_
             (D.hkey_ c.alice (D.pms_ ~client:c.alice ~server:c.bob c.sec1) c.ra c.rb)
             (D.cfin_
                [
                  c.alice; c.bob; c.sid1; c.clist; c.suite1; c.ra; c.rb;
                  D.pms_ ~client:c.alice ~server:c.bob c.sec1;
                ]))
          nw))

let test_used_sets_grow () =
  let run = Scenario.full_handshake () in
  let s = Scenario.final run in
  let o = run.Scenario.ots in
  Alcotest.(check bool) "ra used" true
    (Scenario.holds run (D.rand_in c.ra (Model.ur o s)));
  Alcotest.(check bool) "rb used" true
    (Scenario.holds run (D.rand_in c.rb (Model.ur o s)));
  Alcotest.(check bool) "rc unused yet" true
    (Scenario.holds run (Term.not_ (D.rand_in c.rc (Model.ur o s))));
  Alcotest.(check bool) "sid used" true
    (Scenario.holds run (D.sid_in c.sid1 (Model.ui o s)));
  Alcotest.(check bool) "secret used" true
    (Scenario.holds run (D.secret_in c.sec1 (Model.us o s)))

let test_replay_is_not_fresh () =
  (* Re-running chello with the already-used random must be ineffective:
     the successor's network contains no fresh ch message to the intruder. *)
  let run = Scenario.full_handshake () in
  let o = run.Scenario.ots in
  let s = Scenario.final run in
  let s' = Ots.apply o "chello" s [ c.alice; D.intruder; c.ra; c.clist ] in
  let dup = D.ch_ ~crt:c.alice ~src:c.alice ~dst:D.intruder c.ra c.clist in
  Alcotest.(check bool) "stale random rejected" true
    (Scenario.holds run (Term.not_ (D.msg_in dup (Model.nw o s'))))

let test_resumption_runs () =
  let run = Scenario.resumption () in
  check_effective run;
  List.iter
    (fun m -> Alcotest.(check bool) "resumption message sent" true (in_final run m))
    [ hm.ch2_msg; hm.sh2_msg; hm.sf2_msg; hm.cf2_msg ]

let test_duplication_runs () =
  let run = Scenario.duplication () in
  check_effective run;
  let c = Scenario.cast in
  let o = run.Scenario.ots in
  let s = Scenario.final run in
  (* After duplicating, the session carries the second round's randoms and
     still the original pre-master secret. *)
  Alcotest.(check bool) "bob's duplicated session" true
    (Scenario.holds run
       (Term.eq
          (Model.ss o s ~owner:c.bob ~peer:c.alice ~sid:c.sid1)
          (D.st_ c.suite1 c.re c.rf (D.pms_ ~client:c.alice ~server:c.bob c.sec1))))

let test_resumption_variant_runs () =
  let run = Scenario.resumption ~style:Model.Cf2First () in
  check_effective run;
  List.iter
    (fun m -> Alcotest.(check bool) "variant message sent" true (in_final run m))
    [ hm.ch2_msg; hm.sh2_msg; hm.sf2_msg; hm.cf2_msg ]

let test_attack_2prime () =
  let run = Scenario.attack_2prime () in
  check_effective run;
  let nw = Model.nw run.Scenario.ots (Scenario.final run) in
  (* Bob sent his ServerFinished for a handshake seemingly with alice... *)
  let pms' = D.pms_ ~client:D.intruder ~server:c.bob c.sec2 in
  let sf =
    D.sf_ ~crt:c.bob ~src:c.bob ~dst:c.alice
      (D.esfin_
         (D.hkey_ c.bob pms' c.ri c.rb)
         (D.sfin_ [ c.alice; c.bob; c.sid1; c.clist; c.suite1; c.ri; c.rb; pms' ]))
  in
  Alcotest.(check bool) "bob completed the handshake" true
    (Scenario.holds run (D.msg_in sf nw));
  (* ... but no ClientFinished was ever created by alice: property 2' has a
     counterexample (Section 5.3). *)
  let genuine_cf =
    D.cf_ ~crt:c.alice ~src:c.alice ~dst:c.bob
      (D.ecfin_
         (D.hkey_ c.alice pms' c.ri c.rb)
         (D.cfin_ [ c.alice; c.bob; c.sid1; c.clist; c.suite1; c.ri; c.rb; pms' ]))
  in
  Alcotest.(check bool) "alice never sent it" true
    (Scenario.holds run (Term.not_ (D.msg_in genuine_cf nw)))

let test_attack_3prime () =
  let run = Scenario.attack_3prime () in
  check_effective run;
  let o = run.Scenario.ots in
  let s = Scenario.final run in
  let nw = Model.nw o s in
  let pms' = D.pms_ ~client:D.intruder ~server:c.bob c.sec2 in
  (* Bob resumed the hijacked session: his session state was refreshed... *)
  Alcotest.(check bool) "bob's refreshed session" true
    (Scenario.holds run
       (Term.eq
          (Model.ss o s ~owner:c.bob ~peer:c.alice ~sid:c.sid1)
          (D.st_ c.suite1 c.rc c.rd pms')));
  (* ... on a ClientFinished2 never created by alice: property 3'. *)
  let genuine_cf2 =
    D.cf2_ ~crt:c.alice ~src:c.alice ~dst:c.bob
      (D.ecfin2_
         (D.hkey_ c.alice pms' c.rc c.rd)
         (D.cfin2_ [ c.alice; c.bob; c.sid1; c.suite1; c.rc; c.rd; pms' ]))
  in
  Alcotest.(check bool) "alice never sent it" true
    (Scenario.holds run (Term.not_ (D.msg_in genuine_cf2 nw)))

let test_intruder_cannot_decrypt_honest_kx () =
  let run = Scenario.full_handshake () in
  let nw = Model.nw run.Scenario.ots (Scenario.final run) in
  (* The ciphertext itself is gleanable but the pms under bob's key is not. *)
  Alcotest.(check bool) "ciphertext known" true
    (Scenario.holds run
       (D.in_cepms
          (D.epms_ (D.pk_ c.bob) (D.pms_ ~client:c.alice ~server:c.bob c.sec1))
          nw));
  Alcotest.(check bool) "payload unknown" true
    (Scenario.holds run
       (Term.not_ (D.in_cpms (D.pms_ ~client:c.alice ~server:c.bob c.sec1) nw)))

let test_kx_to_intruder_leaks () =
  (* If alice runs a handshake *with the intruder as server*, the pms is
     rightfully known to the intruder (inv1's second disjunct). *)
  let o = Model.ots () in
  let run0 = Scenario.full_handshake () in
  let s1 =
    Ots.apply o "chello" (Ots.init_state o) [ c.alice; D.intruder; c.ra; c.clist ]
  in
  let ch = D.ch_ ~crt:c.alice ~src:c.alice ~dst:D.intruder c.ra c.clist in
  let s2 = Ots.apply o "shello" s1 [ D.intruder; c.rb; c.sid1; c.suite1; ch ] in
  let sh = D.sh_ ~crt:D.intruder ~src:D.intruder ~dst:c.alice c.rb c.sid1 c.suite1 in
  let s3 = Ots.apply o "cert" s2 [ D.intruder; ch; sh ] in
  let icert =
    D.cert_of D.intruder (D.pk_ D.intruder)
      (D.sig_of ~signer:D.ca ~subject:D.intruder (D.pk_ D.intruder))
  in
  let ct = D.ct_ ~crt:D.intruder ~src:D.intruder ~dst:c.alice icert in
  let s4 = Ots.apply o "kexch" s3 [ c.alice; c.sec1; ch; sh; ct ] in
  Alcotest.(check bool) "pms for intruder-as-server is gleanable" true
    (Scenario.holds run0
       (D.in_cpms
          (D.pms_ ~client:c.alice ~server:D.intruder c.sec1)
          (Model.nw o s4)))

let tests =
  [
    "ots well-formed (both styles)", `Quick, test_ots_well_formed;
    "full handshake runs", `Quick, test_full_handshake_runs;
    "full handshake sessions", `Quick, test_full_handshake_sessions;
    "pms not leaked in honest run", `Quick, test_pms_not_leaked_in_honest_run;
    "gleaning collections", `Quick, test_gleaning_collections;
    "used sets grow", `Quick, test_used_sets_grow;
    "replay is not fresh", `Quick, test_replay_is_not_fresh;
    "resumption runs", `Quick, test_resumption_runs;
    "duplication runs", `Quick, test_duplication_runs;
    "resumption variant runs", `Quick, test_resumption_variant_runs;
    "attack on 2'", `Quick, test_attack_2prime;
    "attack on 3'", `Quick, test_attack_3prime;
    "intruder cannot decrypt honest kx", `Quick, test_intruder_cannot_decrypt_honest_kx;
    "kx to intruder leaks (by design)", `Quick, test_kx_to_intruder_leaks;
  ]

let suite = "tls-model", tests
