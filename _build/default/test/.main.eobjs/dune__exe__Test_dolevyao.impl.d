test/test_dolevyao.ml: Alcotest Dolevyao List Printf QCheck QCheck_alcotest
