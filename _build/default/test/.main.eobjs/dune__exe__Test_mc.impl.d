test/test_mc.ml: Alcotest Fun List Mc Nspk Tls
