test/test_matching_props.ml: Ac Kernel List Matching QCheck QCheck_alcotest Signature Sort Subst Term
