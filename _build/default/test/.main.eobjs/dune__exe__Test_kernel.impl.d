test/test_kernel.ml: Ac Alcotest Boolring Iflift Kernel List Matching QCheck QCheck_alcotest Rewrite Signature Sort Subst Term
