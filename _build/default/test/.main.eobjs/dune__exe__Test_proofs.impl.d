test/test_proofs.ml: Alcotest Core Induction Kernel List Proofs Prover Report Tls Tls_invariants
