test/test_core.ml: Alcotest Cafeobj Core Induction Kernel List Ots Prover Report Rewrite Signature Sort Specgen Term
