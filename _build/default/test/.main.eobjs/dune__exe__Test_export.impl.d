test/test_export.ml: Alcotest Cafeobj Kernel Lazy List Option Signature String Term Tls
