test/test_cafeobj.ml: Alcotest Cafeobj Filename Kernel List Option Signature Sort String Sys Term
