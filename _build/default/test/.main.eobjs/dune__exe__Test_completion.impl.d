test/test_completion.ml: Alcotest Completion Kernel Lazy List Order QCheck QCheck_alcotest Rewrite Signature Sort Term
