test/test_tls.ml: Alcotest Core Data Kernel List Model Ots Scenario String Term Tls
