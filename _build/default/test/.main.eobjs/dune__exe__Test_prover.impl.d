test/test_prover.ml: Alcotest Cafeobj Core Kernel List Option Printf Prover Signature Sort String Term
