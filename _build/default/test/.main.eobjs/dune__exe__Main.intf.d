test/main.mli:
