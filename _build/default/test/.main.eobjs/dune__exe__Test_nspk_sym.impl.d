test/test_nspk_sym.ml: Alcotest Core Induction List Nspk Ots Prover
