(* Tests of the generic Dolev-Yao knowledge engine on a toy algebra of
   pairs, symmetric encryption and hashing. *)

type item =
  | Atom of string
  | Pair of item * item
  | Enc of item * item  (** Enc (key, body) *)
  | Hash of item

module Algebra = struct
  type t = item

  let compare = compare

  let analyze ~knows = function
    | Atom _ -> []
    | Pair (a, b) -> [ a; b ]
    | Enc (k, body) -> if knows k then [ body ] else []
    | Hash _ -> []

  let components = function
    | Atom _ -> None
    | Pair (a, b) -> Some [ a; b ]
    | Enc (k, body) -> Some [ k; body ]
    | Hash x -> Some [ x ]
end

module K = Dolevyao.Make (Algebra)

let k = Atom "k"
let secret = Atom "secret"
let nonce = Atom "nonce"

let test_analysis_of_pairs () =
  let kn = K.learn K.empty [ Pair (nonce, Pair (k, Atom "x")) ] in
  Alcotest.(check bool) "nonce" true (K.knows kn nonce);
  Alcotest.(check bool) "k" true (K.knows kn k);
  Alcotest.(check bool) "x" true (K.knows kn (Atom "x"));
  Alcotest.(check bool) "secret unknown" false (K.knows kn secret)

let test_decryption_needs_key () =
  let kn = K.learn K.empty [ Enc (k, secret) ] in
  Alcotest.(check bool) "no key, no secret" false (K.knows kn secret);
  let kn = K.learn kn [ k ] in
  Alcotest.(check bool) "key arrives, closure reopens ciphertext" true
    (K.knows kn secret)

let test_decryption_key_inside_other_ciphertext () =
  (* k is itself encrypted under k2; learning k2 must cascade. *)
  let kn = K.learn K.empty [ Enc (k, secret); Enc (Atom "k2", k) ] in
  Alcotest.(check bool) "nothing yet" false (K.knows kn secret);
  let kn = K.learn kn [ Atom "k2" ] in
  Alcotest.(check bool) "cascaded decryption" true (K.knows kn secret)

let test_synthesis () =
  let kn = K.learn K.empty [ k; nonce ] in
  Alcotest.(check bool) "can rebuild pair" true
    (K.derivable kn (Pair (nonce, k)));
  Alcotest.(check bool) "can encrypt" true (K.derivable kn (Enc (k, nonce)));
  Alcotest.(check bool) "can hash" true (K.derivable kn (Hash nonce));
  Alcotest.(check bool) "cannot invent atoms" false
    (K.derivable kn (Pair (nonce, secret)))

let test_hash_one_way () =
  let kn = K.learn K.empty [ Hash secret ] in
  Alcotest.(check bool) "hash known" true (K.knows kn (Hash secret));
  Alcotest.(check bool) "preimage not derivable" false (K.derivable kn secret)

let test_replay_vs_construction () =
  (* A ciphertext under an unknown key can be replayed (it is known) even
     though it could not be constructed. *)
  let kn = K.learn K.empty [ Enc (secret, nonce) ] in
  Alcotest.(check bool) "replayable" true (K.derivable kn (Enc (secret, nonce)));
  Alcotest.(check bool) "but a variant is not" false
    (K.derivable kn (Enc (secret, k)))

let test_monotone_and_idempotent () =
  let base = [ Enc (k, secret); k; Pair (nonce, Atom "x") ] in
  let kn1 = K.learn K.empty base in
  let kn2 = K.learn kn1 [] in
  Alcotest.(check int) "learn [] is identity" 0 (K.compare kn1 kn2);
  let kn3 = K.learn kn1 base in
  Alcotest.(check int) "relearning is idempotent" 0 (K.compare kn1 kn3);
  Alcotest.(check bool) "size sane" true (K.size kn1 >= List.length base)

let gen_item =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then map (fun i -> Atom (Printf.sprintf "a%d" (i mod 5))) small_nat
        else
          frequency
            [
              2, map (fun i -> Atom (Printf.sprintf "a%d" (i mod 5))) small_nat;
              2, map2 (fun a b -> Pair (a, b)) (self (n / 2)) (self (n / 2));
              2, map2 (fun a b -> Enc (a, b)) (self (n / 2)) (self (n / 2));
              1, map (fun a -> Hash a) (self (n / 2));
            ]))

let arb_item = QCheck.make gen_item

let prop_known_implies_derivable =
  QCheck.Test.make ~name:"knows implies derivable" ~count:200
    (QCheck.pair arb_item (QCheck.list_of_size (QCheck.Gen.return 3) arb_item))
    (fun (x, learned) ->
      let kn = K.learn K.empty (x :: learned) in
      K.derivable kn x)

let prop_learning_is_monotone =
  QCheck.Test.make ~name:"learning is monotone" ~count:200
    (QCheck.pair arb_item (QCheck.list_of_size (QCheck.Gen.return 4) arb_item))
    (fun (x, learned) ->
      let kn1 = K.learn K.empty learned in
      let kn2 = K.learn kn1 [ x ] in
      List.for_all (K.knows kn2) (K.items kn1))

let tests =
  [
    "analysis of pairs", `Quick, test_analysis_of_pairs;
    "decryption needs key", `Quick, test_decryption_needs_key;
    "cascaded decryption", `Quick, test_decryption_key_inside_other_ciphertext;
    "synthesis", `Quick, test_synthesis;
    "hash one-way", `Quick, test_hash_one_way;
    "replay vs construction", `Quick, test_replay_vs_construction;
    "monotone and idempotent", `Quick, test_monotone_and_idempotent;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
      [ prop_known_implies_derivable; prop_learning_is_monotone ]

let suite = "dolevyao", tests
