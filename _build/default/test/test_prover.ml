(* Direct unit tests of the proof-passage engine: propositional closure,
   equality splitting with congruence-by-substitution, recognizer
   expansion, constructor occurs-check, refutation trails and budgets. *)

open Kernel
open Core

let elt = Sort.visible "PvElt"
let box = Sort.visible "PvBox"
let spec = Cafeobj.Spec.create "PV"

let () =
  ignore (Cafeobj.Spec.declare_sort spec "PvElt");
  ignore (Cafeobj.Spec.declare_sort spec "PvBox")

let mk =
  Cafeobj.Datatype.declare_ctor spec ~sort:box "pv-mk"
    [ "pv-fst", elt; "pv-snd", elt ]

let empty = Cafeobj.Datatype.declare_ctor spec ~sort:box "pv-empty" []
let () = Cafeobj.Datatype.finalize_sort spec box

let () =
  Cafeobj.Spec.add_rule spec
    (List.hd (Cafeobj.Datatype.equality_rules_for ~ctors:[] elt))

let fst_op = Option.get (Cafeobj.Spec.find_op spec "pv-fst")
let is_mk = Option.get (Cafeobj.Spec.find_op spec "pv-mk?")
let fresh_counter = ref 0

let fresh sort =
  incr fresh_counter;
  Term.const
    (Cafeobj.Spec.declare_op spec
       (Printf.sprintf "pv#%d" !fresh_counter)
       [] sort ~attrs:[])

let ctx () =
  {
    Prover.system = Cafeobj.Spec.system spec;
    fresh;
    ctor_of_recognizer =
      (fun o ->
        if String.equal o.Signature.name "pv-mk?" then Some mk else None);
  }

let prove ?config ~hyps goal = Prover.prove ?config (ctx ()) ~hyps ~goal

let check_proved name outcome =
  match outcome with
  | Prover.Proved _ -> ()
  | o -> Alcotest.failf "%s: %a" name Prover.pp_outcome o

(* ------------------------------------------------------------------ *)

let test_propositional () =
  let p = fresh Sort.bool and q = fresh Sort.bool in
  check_proved "modus ponens"
    (prove ~hyps:[ p; Term.implies p q ] q);
  check_proved "case split on an atom"
    (prove ~hyps:[] (Term.or_ p (Term.not_ p)))

let test_refutation_with_trail () =
  let p = fresh Sort.bool in
  match prove ~hyps:[] p with
  | Prover.Refuted { trail; _ } ->
    Alcotest.(check bool) "trail assigns the atom" true
      (List.exists
         (fun { Prover.atom; value } -> Term.equal atom p && not value)
         trail)
  | o -> Alcotest.failf "expected refutation, got %a" Prover.pp_outcome o

let test_equality_substitution () =
  (* Assuming x = mk(a, b) must let projections compute: fst(x) = a. *)
  let x = fresh box and a = fresh elt and b = fresh elt in
  check_proved "congruence by substitution"
    (prove ~hyps:[]
       (Term.implies
          (Term.eq x (Term.app mk [ a; b ]))
          (Term.eq (Term.app fst_op [ x ]) a)))

let test_recognizer_expansion () =
  (* mk?(x) implies x = mk(fst x, snd x): needs the no-junk expansion. *)
  let x = fresh box in
  let snd_op = Option.get (Cafeobj.Spec.find_op spec "pv-snd") in
  check_proved "recognizer expansion"
    (prove ~hyps:[]
       (Term.implies
          (Term.app is_mk [ x ])
          (Term.eq x
             (Term.app mk [ Term.app fst_op [ x ]; Term.app snd_op [ x ] ]))))

let test_no_confusion () =
  let a = fresh elt and b = fresh elt in
  check_proved "mk <> empty"
    (prove ~hyps:[]
       (Term.not_ (Term.eq (Term.app mk [ a; b ]) (Term.const empty))))

let test_occurs_check_vacuous () =
  (* x = mk(x-containing term) is unsatisfiable in the free algebra, so
     anything follows from it. *)
  let x = fresh box and a = fresh elt in
  let weird = Term.app mk [ a; Term.app fst_op [ x ] ] in
  ignore weird;
  (* Use a directly-constructor-embedded occurrence. *)
  let y = fresh elt in
  let outcome =
    prove ~hyps:[]
      (Term.implies (Term.eq y (Term.app fst_op [ Term.app mk [ y; y ] ]))
         Term.tt)
  in
  check_proved "trivially true consequent" outcome;
  let x2 = fresh box in
  let nested = Term.app mk [ a; a ] in
  ignore nested;
  let occurs_goal =
    Term.implies
      (Term.eq x2 (Term.app mk [ Term.app fst_op [ x2 ]; Term.app fst_op [ x2 ] ]))
      Term.ff
  in
  (* The sides are incomparable non-constructor contexts; the prover may
     prove it vacuous or leave it refuted — but it must terminate. *)
  match prove ~hyps:[] occurs_goal with
  | Prover.Proved _ | Prover.Refuted _ | Prover.Unknown _ -> ()

let test_split_budget () =
  let atoms = List.init 12 (fun _ -> fresh Sort.bool) in
  let goal = Term.disj (atoms @ [ Term.not_ (List.hd atoms) ]) in
  (match prove ~config:{ Prover.max_splits = 2; max_depth = 64 } ~hyps:[] goal with
  | Prover.Unknown { reason; _ } ->
    Alcotest.(check string) "budget reason" "split budget exhausted" reason
  | Prover.Proved _ -> ()  (* tautology may close before the budget bites *)
  | Prover.Refuted _ -> Alcotest.fail "tautology refuted?!");
  check_proved "with budget it closes"
    (prove ~config:{ Prover.max_splits = 1000; max_depth = 64 } ~hyps:[] goal)

let test_stats_counted () =
  (* Purely propositional goals close without any split (the boolean ring is
     complete); equality atoms are what force case analysis. *)
  let p = fresh Sort.bool and q = fresh Sort.bool in
  (match prove ~hyps:[] (Term.or_ (Term.and_ p q) (Term.or_ (Term.not_ p) (Term.not_ q))) with
  | Prover.Proved stats ->
    Alcotest.(check int) "no split needed for propositional logic" 0
      stats.Prover.splits
  | o -> Alcotest.failf "expected proof, got %a" Prover.pp_outcome o);
  let x = fresh box and a = fresh elt and b = fresh elt in
  match
    prove ~hyps:[]
      (Term.implies
         (Term.eq x (Term.app mk [ a; b ]))
         (Term.eq (Term.app fst_op [ x ]) a))
  with
  | Prover.Proved stats ->
    Alcotest.(check bool) "equality split counted" true (stats.Prover.splits >= 1);
    Alcotest.(check bool) "rewrite steps counted" true
      (stats.Prover.rewrite_steps >= 1)
  | o -> Alcotest.failf "expected proof, got %a" Prover.pp_outcome o

let test_hypothesis_normalization () =
  (* A hypothesis that itself normalizes to a compound formula must still
     constrain the goal. *)
  let p = fresh Sort.bool and q = fresh Sort.bool in
  check_proved "compound hypothesis"
    (prove ~hyps:[ Term.and_ p (Term.implies p q) ] (Term.and_ q p))

let tests =
  [
    "propositional", `Quick, test_propositional;
    "refutation with trail", `Quick, test_refutation_with_trail;
    "equality substitution", `Quick, test_equality_substitution;
    "recognizer expansion", `Quick, test_recognizer_expansion;
    "no confusion", `Quick, test_no_confusion;
    "occurs check terminates", `Quick, test_occurs_check_vacuous;
    "split budget", `Quick, test_split_budget;
    "stats counted", `Quick, test_stats_counted;
    "hypothesis normalization", `Quick, test_hypothesis_normalization;
  ]

let suite = "prover", tests
