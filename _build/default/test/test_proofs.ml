(* Tests of the Section-5 verification campaign.

   The full 18-invariant campaign runs in about a second, so the positive
   results are checked directly; the negative properties 2'/3' must be
   refuted exactly at the intruder transitions that fake Finished messages
   from a known pre-master secret (the paper's counterexamples). *)

open Core
open Proofs

let is_proved (r : Induction.result) = r.Induction.proved

let case_outcome (r : Induction.result) name =
  let c =
    List.find (fun (c : Induction.case_result) -> c.Induction.case_name = name) r.Induction.cases
  in
  c.Induction.outcome

let run_proof style name =
  let env = Tls.Model.env style in
  Tls_invariants.run env (Tls_invariants.find style name)

(* ------------------------------------------------------------------ *)

let test_campaign_names () =
  let names = List.map Tls_invariants.name_of (Tls_invariants.all Tls.Model.Original) in
  Alcotest.(check int) "18 invariants" 18 (List.length names);
  List.iter
    (fun p ->
      Alcotest.(check bool) ("main property " ^ p) true (List.mem p names))
    Tls_invariants.main_properties;
  List.iter
    (fun p -> Alcotest.(check bool) ("auxiliary " ^ p) true (List.mem p names))
    Tls_invariants.auxiliary

let test_inv1_proved () =
  Alcotest.(check bool) "inv1" true (is_proved (run_proof Tls.Model.Original "inv1"))

let test_sig_genuine_proved () =
  Alcotest.(check bool) "sig-genuine" true
    (is_proved (run_proof Tls.Model.Original "sig-genuine"))

let test_esfin_genuine_proved () =
  Alcotest.(check bool) "esfin-genuine" true
    (is_proved (run_proof Tls.Model.Original "esfin-genuine"))

let test_derived_inv2_proved () =
  Alcotest.(check bool) "inv2" true (is_proved (run_proof Tls.Model.Original "inv2"))

let test_full_campaign () =
  let results = Tls_invariants.campaign Tls.Model.Original in
  let s = Report.summarize results in
  Alcotest.(check int) "all proved" s.Report.invariants_total
    s.Report.invariants_proved;
  (* 14 inductive invariants x (init + 27 actions) + 4 derived cases. *)
  Alcotest.(check int) "cases" ((14 * 28) + 4) s.Report.cases_total

let test_variant_campaign () =
  let results = Tls_invariants.campaign Tls.Model.Cf2First in
  Alcotest.(check bool) "variant: all proved" true
    (List.for_all is_proved results)

let refuted_exactly_at style prop expected_cases =
  let env = Tls.Model.env style in
  let r = Tls_invariants.run env (prop style) in
  Alcotest.(check bool) "not proved" false (is_proved r);
  let failing =
    List.filter_map
      (fun (c : Induction.case_result) ->
        match c.Induction.outcome with
        | Prover.Refuted _ -> Some c.Induction.case_name
        | Prover.Proved _ -> None
        | Prover.Unknown _ -> Some (c.Induction.case_name ^ "?"))
      r.Induction.cases
  in
  Alcotest.(check (list string)) "refuting transitions" expected_cases failing

let test_prop2'_refuted () =
  (* 2' breaks where the intruder constructs a ClientFinished from a known
     pms (the paper's counterexample), and equivalently where it replays
     such a constructed ciphertext. *)
  refuted_exactly_at Tls.Model.Original Tls_invariants.prop2'
    [ "fakeCf1"; "fakeCf2" ]

let test_prop3'_refuted () =
  refuted_exactly_at Tls.Model.Original Tls_invariants.prop3'
    [ "fakeCf21"; "fakeCf22" ]

let test_prop2'_trail_mentions_intruder () =
  let env = Tls.Model.env Tls.Model.Original in
  let r = Tls_invariants.run env (Tls_invariants.prop2' Tls.Model.Original) in
  match case_outcome r "fakeCf2" with
  | Prover.Refuted { trail; _ } ->
    (* The refuting branch assumes some principal *is* the intruder (the
       faked seeming-sender identity switch). *)
    let mentions_intruder =
      List.exists
        (fun { Prover.atom; value } ->
          value
          && List.exists
               (fun t -> Kernel.Term.equal t Tls.Data.intruder)
               (Kernel.Term.subterms atom))
        trail
    in
    Alcotest.(check bool) "trail sets a principal to intruder" true
      mentions_intruder
  | _ -> Alcotest.fail "expected refutation at fakeCf2"

let test_hint_is_needed () =
  (* esfin-genuine without its inv1 hint must fail at fakeSf2: the prover
     cannot rule out the intruder knowing an honest pms. *)
  let env = Tls.Model.env Tls.Model.Original in
  match Tls_invariants.find Tls.Model.Original "esfin-genuine" with
  | Tls_invariants.Inductive (inv, _) ->
    let r = Induction.prove_invariant env ~hints:[] inv in
    Alcotest.(check bool) "fails without SIH" false r.Induction.proved;
    (match case_outcome r "fakeSf2" with
    | Prover.Refuted _ -> ()
    | _ -> Alcotest.fail "expected fakeSf2 to be the blocking case")
  | _ -> Alcotest.fail "esfin-genuine should be inductive"

let test_inv1_kexch_needs_signature_lemmas () =
  let env = Tls.Model.env Tls.Model.Original in
  match Tls_invariants.find Tls.Model.Original "inv1" with
  | Tls_invariants.Inductive (inv, _) ->
    let r = Induction.prove_invariant env ~hints:[] inv in
    Alcotest.(check bool) "fails without SIH" false r.Induction.proved
  | _ -> Alcotest.fail "inv1 should be inductive"

let test_extensions_proved () =
  let env = Tls.Model.env Tls.Model.Original in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Tls_invariants.name_of p ^ " proved")
        true
        (is_proved (Tls_invariants.run env p)))
    (Tls_invariants.extensions Tls.Model.Original)

let test_stats_are_recorded () =
  let r = run_proof Tls.Model.Original "inv1" in
  let s = Report.summarize [ r ] in
  Alcotest.(check bool) "some rewriting happened" true (s.Report.total_rewrite_steps > 100);
  Alcotest.(check bool) "some case analysis happened" true (s.Report.total_splits > 5)

let tests =
  [
    "campaign names", `Quick, test_campaign_names;
    "inv1 proved", `Quick, test_inv1_proved;
    "sig-genuine proved", `Quick, test_sig_genuine_proved;
    "esfin-genuine proved", `Quick, test_esfin_genuine_proved;
    "inv2 derived from lemmas", `Quick, test_derived_inv2_proved;
    "full campaign proved", `Quick, test_full_campaign;
    "variant campaign proved", `Quick, test_variant_campaign;
    "prop2' refuted at fakeCf2", `Quick, test_prop2'_refuted;
    "prop3' refuted at fakeCf22", `Quick, test_prop3'_refuted;
    "prop2' trail mentions intruder", `Quick, test_prop2'_trail_mentions_intruder;
    "esfin-genuine needs inv1 hint", `Quick, test_hint_is_needed;
    "inv1 needs signature lemmas", `Quick, test_inv1_kexch_needs_signature_lemmas;
    "extension invariants proved", `Quick, test_extensions_proved;
    "stats recorded", `Quick, test_stats_are_recorded;
  ]

let suite = "proofs", tests
