(* verify — run the Section-5 verification campaign.

   Usage:
     verify                     run all 18 invariants (original protocol)
     verify --variant           run them for the Cf2First variant
     verify --only inv1         run a single proof
     verify --negative          also attempt the failing properties 2'/3'
     verify --extensions        also prove the two beyond-paper invariants
     verify --stats             print campaign totals only *)

open Core

let run_one env proof =
  let r = Proofs.Tls_invariants.run env proof in
  Format.printf "%a@.@." Report.pp_result r;
  r

let () =
  let variant = ref false in
  let only = ref [] in
  let negative = ref false in
  let extensions = ref false in
  let stats_only = ref false in
  let spec =
    [
      "--variant", Arg.Set variant, "verify the Cf2First variant protocol";
      "--only", Arg.String (fun s -> only := s :: !only), "NAME run one proof (repeatable)";
      "--negative", Arg.Set negative, "also attempt properties 2' and 3'";
      "--extensions", Arg.Set extensions, "also prove the beyond-paper invariants";
      "--stats", Arg.Set stats_only, "print summary only";
    ]
  in
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) "verify [options]";
  let style = if !variant then Tls.Model.Cf2First else Tls.Model.Original in
  let env = Tls.Model.env style in
  let proofs =
    match !only with
    | [] ->
      Proofs.Tls_invariants.all style
      @ (if !extensions then Proofs.Tls_invariants.extensions style else [])
    | names -> List.map (Proofs.Tls_invariants.find style) (List.rev names)
  in
  let t0 = Unix.gettimeofday () in
  let results =
    if !stats_only then List.map (Proofs.Tls_invariants.run env) proofs
    else List.map (run_one env) proofs
  in
  Format.printf "%a@." Report.pp_summary (Report.summarize results);
  Format.printf "wall-clock: %.2fs@." (Unix.gettimeofday () -. t0);
  if !negative then begin
    Format.printf "@.--- negative properties (Section 5.3) ---@.";
    List.iter
      (fun p -> ignore (run_one env p))
      [ Proofs.Tls_invariants.prop2' style; Proofs.Tls_invariants.prop3' style ]
  end;
  let failures = Report.failures results in
  if failures <> [] then exit 1
