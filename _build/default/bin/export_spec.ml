(* export_spec — regenerate the CafeOBJ text of the protocol specification
   (the paper's artifact) from the programmatic model.

   Usage:
     export_spec            print the TLS module to stdout
     export_spec --variant  the Cf2First variant
     export_spec -o FILE    write to FILE *)

let () =
  let variant = ref false in
  let output = ref "" in
  Arg.parse
    [
      "--variant", Arg.Set variant, "export the ClientFinished2-first variant";
      "-o", Arg.Set_string output, "FILE write to FILE instead of stdout";
    ]
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "export_spec [options]";
  let style = if !variant then Tls.Model.Cf2First else Tls.Model.Original in
  let src = Cafeobj.Export.to_source (Tls.Model.spec style) in
  if !output = "" then print_string src
  else begin
    let oc = open_out !output in
    output_string oc src;
    close_out oc;
    Printf.printf "wrote %s (%d bytes)\n" !output (String.length src)
  end
