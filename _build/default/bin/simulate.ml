(* simulate — execute the Figure-2 handshake scenarios symbolically and
   print every message, observer values, and the intruder's gleanings.

   Usage:
     simulate [--scenario full|resumption|attack2|attack3] [--variant] *)

open Kernel
module S = Tls.Scenario
module D = Tls.Data

let print_run run =
  Format.printf "=== %s ===@." run.S.run_name;
  List.iteri
    (fun i (step : S.step) -> Format.printf "%2d. %s@." (i + 1) step.S.label)
    run.S.steps;
  (match S.effective run with
  | [] -> Format.printf "(all transitions effective)@."
  | dead -> Format.printf "NON-EFFECTIVE: %s@." (String.concat ", " dead));
  let final = S.final run in
  let o = run.S.ots in
  let nw = Tls.Model.nw o final in
  Format.printf "@.network (normal form):@.  %a@.@." Term.pp (S.eval run nw);
  let c = S.cast in
  let honest_pms = D.pms_ ~client:c.S.alice ~server:c.S.bob c.S.sec1 in
  let intruder_pms = D.pms_ ~client:D.intruder ~server:c.S.bob c.S.sec2 in
  Format.printf "intruder gleanings:@.";
  Format.printf "  honest pms:    %a@." Term.pp (S.eval run (D.in_cpms honest_pms nw));
  Format.printf "  own pms:       %a@." Term.pp (S.eval run (D.in_cpms intruder_pms nw));
  Format.printf "  bob's cert sig: %a@." Term.pp
    (S.eval run (D.in_csig (D.sig_of ~signer:D.ca ~subject:c.S.bob (D.pk_ c.S.bob)) nw))

let () =
  let scenario = ref "full" in
  let variant = ref false in
  let spec =
    [
      "--scenario", Arg.Set_string scenario,
      "full|resumption|duplication|attack2|attack3";
      "--variant", Arg.Set variant, "use the ClientFinished2-first variant";
    ]
  in
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) "simulate [options]";
  let style = if !variant then Tls.Model.Cf2First else Tls.Model.Original in
  let run =
    match !scenario with
    | "full" -> S.full_handshake ~style ()
    | "resumption" -> S.resumption ~style ()
    | "duplication" -> S.duplication ()
    | "attack2" -> S.attack_2prime ()
    | "attack3" -> S.attack_3prime ()
    | other -> raise (Arg.Bad ("unknown scenario " ^ other))
  in
  print_run run
