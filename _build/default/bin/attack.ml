(* attack — explicit-state analysis of the bounded TLS scenario.

   Reproduces Section 5.3 with the Murphi-style baseline: searches for the
   counterexamples to client authentication (properties 2' and 3') and
   bound-checks the five positive properties. *)

let pp_label = Tls.Concrete.pp_label

let check name ?max_states ?max_depth scen props =
  Format.printf "@.== %s ==@." name;
  let outcome = Mc.bfs ?max_states ?max_depth (Tls.Concrete.system scen) ~props in
  Format.printf "%a@." (Mc.pp_outcome pp_label) outcome;
  outcome

let () =
  let max_states = ref 200_000 in
  let max_depth = ref 12 in
  let spec =
    [
      "--max-states", Arg.Set_int max_states, "N state budget (default 200000)";
      "--max-depth", Arg.Set_int max_depth, "N depth bound (default 12)";
    ]
  in
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) "attack [options]";
  let scen = Tls.Concrete.default_scenario () in
  let system = Tls.Concrete.system scen in

  (* Sanity witness: the scenario can complete a handshake and a
     resumption. *)
  Format.printf "== reachability: completed handshake ==@.";
  (match
     Mc.reachable ~max_states:!max_states ~max_depth:!max_depth system
       ~goal:(Tls.Concrete.handshake_complete scen)
   with
  | Some (trace, _) ->
    List.iter (fun l -> Format.printf "  %a@." pp_label l) trace
  | None -> Format.printf "  NOT reachable (scenario too small?)@.");

  ignore
    (check "property 2' (client authentication, full handshake)"
       ~max_states:!max_states ~max_depth:!max_depth scen
       [ "cf-authentic", Tls.Concrete.prop_cf_authentic ]);
  ignore
    (check "property 3' (client authentication, resumption)"
       ~max_states:!max_states ~max_depth:!max_depth scen
       [ "cf2-authentic", Tls.Concrete.prop_cf2_authentic ]);
  ignore
    (check "properties 1-3 (secrecy + server authentication)"
       ~max_states:!max_states ~max_depth:!max_depth scen
       [
         "pms-secrecy", Tls.Concrete.prop_pms_secrecy scen;
         "sf-authentic", Tls.Concrete.prop_sf_authentic;
         "sf2-authentic", Tls.Concrete.prop_sf2_authentic;
       ])
