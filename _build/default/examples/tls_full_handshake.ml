(* The Figure-2 handshake end to end.

   Executes the six-message full handshake between Alice and Bob in the
   symbolic model (every observation computed by rewriting), shows the
   session state both sides establish, checks what the intruder gleaned
   along the way, and finally verifies the secrecy invariant inv1 for the
   whole protocol.

   Run with:  dune exec examples/tls_full_handshake.exe *)

open Kernel
module D = Tls.Data
module S = Tls.Scenario

let () =
  let run = S.full_handshake () in
  let c = S.cast in
  Format.printf "=== full handshake (Figure 2) ===@.";
  List.iter
    (fun (step : S.step) -> Format.printf "  %s@." step.S.label)
    run.S.steps;
  (match S.effective run with
  | [] -> Format.printf "all transitions fired@."
  | dead -> Format.printf "DEAD transitions: %s@." (String.concat ", " dead));

  let final = S.final run in
  let o = run.S.ots in
  let nw = Tls.Model.nw o final in

  Format.printf "@.=== what both sides agreed on ===@.";
  let session =
    Tls.Model.ss o final ~owner:c.S.alice ~peer:c.S.bob ~sid:c.S.sid1
  in
  Format.printf "  alice's session: %a@." Term.pp (S.eval run session);
  let session_b =
    Tls.Model.ss o final ~owner:c.S.bob ~peer:c.S.alice ~sid:c.S.sid1
  in
  Format.printf "  bob's session:   %a@." Term.pp (S.eval run session_b);

  Format.printf "@.=== the intruder's view ===@.";
  let pms = D.pms_ ~client:c.S.alice ~server:c.S.bob c.S.sec1 in
  let report label t =
    Format.printf "  %-42s %a@." label Term.pp (S.eval run t)
  in
  report "pre-master secret gleanable?" (D.in_cpms pms nw);
  report "encrypted pms ciphertext gleanable?"
    (D.in_cepms (D.epms_ (D.pk_ c.S.bob) pms) nw);
  report "bob's certificate signature gleanable?"
    (D.in_csig (D.sig_of ~signer:D.ca ~subject:c.S.bob (D.pk_ c.S.bob)) nw);

  Format.printf "@.=== verifying inv1 (pms secrecy) for every execution ===@.";
  let env = Tls.Model.env Tls.Model.Original in
  let result =
    Proofs.Tls_invariants.run env
      (Proofs.Tls_invariants.find Tls.Model.Original "inv1")
  in
  Format.printf "%a@." Core.Report.pp_result result;
  if not result.Core.Induction.proved then exit 1
