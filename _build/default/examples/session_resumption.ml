(* Session resumption and the message-order variant (Section 5.3, end).

   Runs the abbreviated handshake on top of a completed full handshake, in
   both protocol styles — Figure 2's (ServerFinished2 first) and the
   variant where ClientFinished2 comes first — and re-verifies the
   abbreviated-handshake authenticity property (inv3) for both, showing the
   paper's point that proof scores adjust to a changed specification.

   Run with:  dune exec examples/session_resumption.exe *)

open Kernel
module S = Tls.Scenario
module D = Tls.Data

let show_run style name =
  let run = S.resumption ~style () in
  Format.printf "=== %s ===@." name;
  List.iter (fun (step : S.step) -> Format.printf "  %s@." step.S.label) run.S.steps;
  (match S.effective run with
  | [] -> ()
  | dead ->
    Format.printf "  DEAD: %s@." (String.concat ", " dead);
    exit 1);
  let c = S.cast in
  let o = run.S.ots in
  let final = S.final run in
  (* After resumption the session carries the new randoms rc/rd but the same
     pre-master secret. *)
  let refreshed =
    D.st_ c.S.suite1 c.S.rc c.S.rd (D.pms_ ~client:c.S.alice ~server:c.S.bob c.S.sec1)
  in
  let stored = Tls.Model.ss o final ~owner:c.S.bob ~peer:c.S.alice ~sid:c.S.sid1 in
  Format.printf "  bob's refreshed session: %a@." Term.pp (S.eval run stored);
  if not (S.holds run (Term.eq stored refreshed)) then begin
    print_endline "  UNEXPECTED session contents";
    exit 1
  end;
  Format.printf "@."

let verify style name =
  Format.printf "=== inv3 (ServerFinished2 authenticity), %s ===@." name;
  let env = Tls.Model.env style in
  let r = Proofs.Tls_invariants.run env (Proofs.Tls_invariants.find style "inv3") in
  Format.printf "  %s@.@."
    (if r.Core.Induction.proved then "proved" else "NOT PROVED");
  if not r.Core.Induction.proved then exit 1

let () =
  show_run Tls.Model.Original "resumption, Figure-2 order (sf2 before cf2)";
  show_run Tls.Model.Cf2First "resumption, variant order (cf2 before sf2)";
  verify Tls.Model.Original "Figure-2 order";
  verify Tls.Model.Cf2First "variant order";
  print_endline "session_resumption: both styles run and verify"
