examples/tls_full_handshake.ml: Core Format Kernel List Proofs String Term Tls
