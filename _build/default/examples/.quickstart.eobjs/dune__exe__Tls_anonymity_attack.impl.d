examples/tls_anonymity_attack.ml: Core Format Kernel List Mc Proofs String Term Tls
