examples/nspk_lowe.mli:
