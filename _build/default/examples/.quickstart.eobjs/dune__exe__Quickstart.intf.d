examples/quickstart.mli:
