examples/quickstart.ml: Cafeobj Core Format Induction Kernel List Ots Report Rewrite Signature Sort Specgen Term
