examples/tls_full_handshake.mli:
