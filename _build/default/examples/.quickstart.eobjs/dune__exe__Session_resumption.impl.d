examples/session_resumption.ml: Core Format Kernel List Proofs String Term Tls
