examples/tls_anonymity_attack.mli:
