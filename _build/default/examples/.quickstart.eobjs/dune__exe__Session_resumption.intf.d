examples/session_resumption.mli:
