examples/nspk_lowe.ml: Core Format List Mc Nspk
