(* NSPK and Lowe's attack (Section 3.2 cites NSPK as the academic
   comparison point; reference [6] is Lowe's paper).

   The same model checker that bound-checks TLS finds the classic
   man-in-the-middle on NSPK in milliseconds, and reports the Lowe-fixed
   variant (NSL) clean under the same bounds.

   Run with:  dune exec examples/nspk_lowe.exe *)

let check variant name =
  Format.printf "=== %s ===@." name;
  let scen = Nspk.default_scenario variant in
  (match
     Mc.bfs ~max_states:100_000 ~max_depth:8 (Nspk.system scen)
       ~props:[ "responder-agreement", Nspk.responder_agreement ]
   with
  | Mc.Violation (v, stats) ->
    Format.printf "ATTACK at depth %d (%d states explored):@." v.Mc.depth
      stats.Mc.states_explored;
    List.iter (fun l -> Format.printf "  %a@." Nspk.pp_label l) v.Mc.trace
  | Mc.No_violation stats | Mc.Out_of_bounds stats ->
    Format.printf "no attack within bounds (%d states, depth %d)@."
      stats.Mc.states_explored stats.Mc.max_depth);
  Format.printf "@."

let symbolic () =
  (* The same OTS/proof-score treatment the paper gives TLS, applied to
     NSPK: NSL's nonce secrecy is proved by simultaneous induction; the
     classic protocol's is refuted, at the very transition Lowe's attack
     exploits. *)
  let module M = Nspk.Symbolic in
  let module P = Nspk.Symbolic_proofs in
  Format.printf "=== symbolic campaign (NSL) ===@.";
  let env = M.proof_env M.Lowe_fixed in
  List.iter
    (fun p ->
      let r = P.run ~env M.Lowe_fixed p in
      Format.printf "  %-14s %s@." p.P.name
        (if r.Core.Induction.proved then "proved" else "NOT PROVED"))
    (P.campaign M.Lowe_fixed);
  Format.printf "=== symbolic campaign (classic NSPK) ===@.";
  let env = M.proof_env M.Classic in
  let r = P.run ~env M.Classic (P.find M.Classic "nonce-secrecy") in
  List.iter
    (fun (c : Core.Induction.case_result) ->
      match c.Core.Induction.outcome with
      | Core.Prover.Refuted _ ->
        Format.printf "  nonce-secrecy refuted at %s (Lowe's flaw)@."
          c.Core.Induction.case_name
      | _ -> ())
    r.Core.Induction.cases

let () =
  check Nspk.Classic "classic NSPK (responder agreement)";
  check Nspk.Lowe_fixed "NSL: Lowe's fix";
  symbolic ();
  print_endline "nspk_lowe: done"
