(* Quickstart: the OTS/CafeOBJ method on a ten-line protocol.

   We model a test-and-set lock as an observational transition system,
   generate its equational theory, execute it by rewriting, and prove
   mutual exclusion by simultaneous induction — the same workflow the
   library applies to TLS.

   Run with:  dune exec examples/quickstart.exe *)

open Kernel
open Core

(* 1. Data: process identifiers (an open sort: any number of processes). *)
let data = Cafeobj.Spec.create "QS-DATA"
let pid = Cafeobj.Spec.declare_sort data "QsPid"

(* 2. The transition system: one boolean observer [lock], one parameterized
   observer [cs] (is process I in the critical section?), two transitions. *)
let proto = Sort.hidden "QsLock"
let sg = Signature.create ()
let lock_op = Signature.declare sg "qs-lock" [ proto ] Sort.bool ~attrs:[]
let cs_op = Signature.declare sg "qs-cs" [ proto; pid ] Sort.bool ~attrs:[]
let enter_op = Signature.declare sg "qs-enter" [ proto; pid ] proto ~attrs:[]
let leave_op = Signature.declare sg "qs-leave" [ proto; pid ] proto ~attrs:[]
let init_op = Signature.declare sg "qs-init" [] proto ~attrs:[]
let sv = Term.var "S" proto
let iv = Term.var "I" pid
let jv = Term.var "J" pid
let lock s = Term.app lock_op [ s ]
let cs s i = Term.app cs_op [ s; i ]

let lock_obs : Ots.observer = { obs_op = lock_op; obs_params = []; obs_result = Sort.bool }
let cs_obs : Ots.observer = { obs_op = cs_op; obs_params = [ "I", pid ]; obs_result = Sort.bool }

let ots : Ots.t =
  {
    ots_name = "QS-LOCK";
    hidden = proto;
    init = init_op;
    observers = [ lock_obs; cs_obs ];
    actions =
      [
        {
          act_op = enter_op;
          act_params = [ "J", pid ];
          act_cond = Term.not_ (lock sv);
          act_effects =
            [
              { eff_observer = lock_obs; eff_value = Term.tt };
              {
                eff_observer = cs_obs;
                eff_value = Term.ite (Term.eq iv jv) Term.tt (cs sv iv);
              };
            ];
        };
        {
          act_op = leave_op;
          act_params = [ "J", pid ];
          act_cond = cs sv jv;
          act_effects =
            [
              { eff_observer = lock_obs; eff_value = Term.ff };
              {
                eff_observer = cs_obs;
                eff_value = Term.ite (Term.eq iv jv) Term.ff (cs sv iv);
              };
            ];
        };
      ];
    init_equations =
      [
        lock (Term.const init_op), Term.ff;
        cs (Term.const init_op) iv, Term.ff;
      ];
  }

let () =
  (* 3. Generate the equational theory (Section 2.3 of the paper) and
     execute a concrete run by rewriting. *)
  let spec = Specgen.generate ~data ots in
  let env = Induction.make_env ~spec ~ots () in
  let sys = Induction.system env in
  let p1 = Term.const (Cafeobj.Spec.declare_op data "qs-p1" [] pid ~attrs:[ Signature.Ctor ]) in
  let s1 = Term.app enter_op [ Term.const init_op; p1 ] in
  Format.printf "after p1 enters:  lock = %a,  cs(p1) = %a@." Term.pp
    (Rewrite.normalize sys (lock s1))
    Term.pp
    (Rewrite.normalize sys (cs s1 p1));

  (* 4. State the invariants. *)
  let holds : Induction.invariant =
    {
      inv_name = "holds";
      inv_params = [ "I", pid ];
      inv_body =
        (fun s args -> Term.implies (cs s (List.hd args)) (lock s));
    }
  in
  let mutex : Induction.invariant =
    {
      inv_name = "mutex";
      inv_params = [ "I", pid; "J", pid ];
      inv_body =
        (fun s args ->
          match args with
          | [ i; j ] -> Term.implies (Term.and_ (cs s i) (cs s j)) (Term.eq i j)
          | _ -> assert false);
    }
  in

  (* 5. Prove them by simultaneous induction: each invariant strengthens the
     other in one transition case (the paper's SIH mechanism). *)
  let mutex_hints : Induction.hint list =
    [
      {
        hint_action = "qs-enter";
        hint_instances =
          (fun s ~inv_args ~act_args:_ ->
            List.map (fun i -> holds.inv_body s [ i ]) inv_args);
      };
    ]
  in
  let holds_hints : Induction.hint list =
    [
      {
        hint_action = "qs-leave";
        hint_instances =
          (fun s ~inv_args ~act_args ->
            List.concat_map
              (fun i -> List.map (fun j -> mutex.inv_body s [ i; j ]) act_args)
              inv_args);
      };
    ]
  in
  let results =
    [
      Induction.prove_invariant env ~hints:holds_hints holds;
      Induction.prove_invariant env ~hints:mutex_hints mutex;
    ]
  in
  Format.printf "@.%a@." Report.pp_campaign results;
  if List.for_all (fun r -> r.Induction.proved) results then
    print_endline "\nquickstart: both invariants proved"
  else exit 1
