(* The Section-5.3 counterexamples: clients are not authenticated.

   Three views of the same fact:
   1. the concrete attack traces replayed in the symbolic model (the
      paper's counterexamples to properties 2' and 3');
   2. the prover refuting the inductive step of 2'/3' (with the offending
      transition in the trail);
   3. the Murphi-style model checker rediscovering the minimal traces
      automatically.

   As the paper notes, the counterexamples also mean that clients that do
   not send certificates cannot be identified — they are anonymous.

   Run with:  dune exec examples/tls_anonymity_attack.exe *)

open Kernel
module D = Tls.Data
module S = Tls.Scenario

let () =
  Format.printf "=== 1. replaying the paper's counterexample to 2' ===@.";
  let run = S.attack_2prime () in
  List.iter (fun (step : S.step) -> Format.printf "  %s@." step.S.label) run.S.steps;
  let c = S.cast in
  let pms' = D.pms_ ~client:D.intruder ~server:c.S.bob c.S.sec2 in
  let nw = Tls.Model.nw run.S.ots (S.final run) in
  let genuine_cf =
    D.cf_ ~crt:c.S.alice ~src:c.S.alice ~dst:c.S.bob
      (D.ecfin_
         (D.hkey_ c.S.alice pms' c.S.ri c.S.rb)
         (D.cfin_
            [ c.S.alice; c.S.bob; c.S.sid1; c.S.clist; c.S.suite1; c.S.ri; c.S.rb; pms' ]))
  in
  Format.printf "  bob accepted a ClientFinished seemingly from alice;@.";
  Format.printf "  alice ever sent it: %a@.@." Term.pp
    (S.eval run (D.msg_in genuine_cf nw));

  Format.printf "=== 2. the prover refutes the inductive step of 2' ===@.";
  let env = Tls.Model.env Tls.Model.Original in
  let r =
    Proofs.Tls_invariants.run env (Proofs.Tls_invariants.prop2' Tls.Model.Original)
  in
  List.iter
    (fun (case : Core.Induction.case_result) ->
      match case.Core.Induction.outcome with
      | Core.Prover.Refuted _ ->
        Format.printf "  refuted at transition %s@." case.Core.Induction.case_name
      | _ -> ())
    r.Core.Induction.cases;

  Format.printf "@.=== 3. the model checker finds the minimal trace ===@.";
  let scen = Tls.Concrete.default_scenario () in
  (match
     Mc.bfs ~max_states:50_000 ~max_depth:6 (Tls.Concrete.system scen)
       ~props:[ "cf-authentic (2')", Tls.Concrete.prop_cf_authentic ]
   with
  | Mc.Violation (v, stats) ->
    Format.printf "  found at depth %d after %d states:@." v.Mc.depth
      stats.Mc.states_explored;
    List.iter (fun l -> Format.printf "    %a@." Tls.Concrete.pp_label l) v.Mc.trace
  | _ ->
    print_endline "  (no violation found — unexpected)";
    exit 1);

  Format.printf "@.=== the resumption counterpart (3') ===@.";
  let run3 = S.attack_3prime () in
  List.iter (fun (step : S.step) -> Format.printf "  %s@." step.S.label) run3.S.steps;
  match S.effective run3 with
  | [] -> Format.printf "  all transitions fired: bob resumed a hijacked session@."
  | dead ->
    Format.printf "  DEAD transitions: %s@." (String.concat ", " dead);
    exit 1
